//===- GridShadowTest.cpp - Two-level grid shadow tests ----------------------===//
//
// Part of the BigFoot reproduction. See README.md for details.
//
// The segments × residue-classes grid: SlimState-style compression for
// block-strided patterns like sor's per-worker red/black chunks.
//
//===----------------------------------------------------------------------===//

#include "runtime/ArrayShadow.h"

#include <gtest/gtest.h>

using namespace bigfoot;

namespace {
struct Clocks {
  ClockPool Pool;
  VectorClock T0, T1;
  Clocks() {
    T0.set(0, 1);
    T1.set(1, 1);
  }
};
} // namespace

TEST(GridShadow, SorPatternStaysCompressed) {
  // Two workers, red/black phases over disjoint halves: four (segment,
  // class) locations, one op per phase sweep.
  Clocks C;
  ArrayShadow S(12000, /*Adaptive=*/true, C.Pool);
  const int64_t Mid = 6000, N = 12000;
  // Worker 0, red phase: writes odds in [0, Mid).
  auto R0 = S.apply(StridedRange(1, Mid, 2), AccessKind::Write, 0, C.T0);
  EXPECT_EQ(R0.ShadowOps, 1u);
  EXPECT_EQ(S.mode(), ArrayShadow::Mode::Strided);
  // Worker 1, red phase: writes odds in [Mid, N).
  auto R1 = S.apply(StridedRange(Mid + 1, N, 2), AccessKind::Write, 1, C.T1);
  EXPECT_EQ(R1.ShadowOps, 1u);
  EXPECT_TRUE(R1.Races.empty()) << "disjoint halves";
  // Black phases: evens.
  auto B0 = S.apply(StridedRange(2, Mid, 2), AccessKind::Write, 0, C.T0);
  auto B1 = S.apply(StridedRange(Mid + 2, N, 2), AccessKind::Write, 1, C.T1);
  EXPECT_EQ(B0.ShadowOps, 1u);
  EXPECT_EQ(B1.ShadowOps, 1u);
  EXPECT_TRUE(B0.Races.empty() && B1.Races.empty());
  // A handful of (segment, class) locations — the two boundary-halo
  // elements (0 and Mid) get their own slivers, which exactness requires
  // — instead of 12000 fine-grained ones.
  EXPECT_LE(S.locationCount(), 8u);
}

TEST(GridShadow, CrossHalfOverlapStillRaces) {
  Clocks C;
  ArrayShadow S(1000, true, C.Pool);
  S.apply(StridedRange(1, 600, 2), AccessKind::Write, 0, C.T0);
  // Unordered overlapping stride sweep by another thread.
  auto R = S.apply(StridedRange(401, 800, 2), AccessKind::Write, 1, C.T1);
  EXPECT_FALSE(R.Races.empty());
}

TEST(GridShadow, UnitRangeOverAlignedWindowsTouchesAllClasses) {
  Clocks C;
  ArrayShadow S(100, true, C.Pool);
  S.apply(StridedRange(0, 100, 2), AccessKind::Read, 0, C.T0); // K=2 grid.
  // A unit-stride read of an aligned window covers both classes.
  auto R = S.apply(StridedRange(20, 40), AccessKind::Read, 0, C.T0);
  EXPECT_NE(S.mode(), ArrayShadow::Mode::Fine);
  EXPECT_EQ(R.ShadowOps, 2u);
}

TEST(GridShadow, MisalignedUnitRangeFallsBackToFine) {
  Clocks C;
  ArrayShadow S(100, true, C.Pool);
  S.apply(StridedRange(0, 100, 2), AccessKind::Read, 0, C.T0);
  auto R = S.apply(StridedRange(21, 40), AccessKind::Read, 0, C.T0);
  EXPECT_EQ(S.mode(), ArrayShadow::Mode::Fine);
  EXPECT_EQ(R.ShadowOps, 19u);
}

TEST(GridShadow, MismatchedStrideFallsBackToFine) {
  Clocks C;
  ArrayShadow S(90, true, C.Pool);
  S.apply(StridedRange(0, 90, 2), AccessKind::Write, 0, C.T0);
  S.apply(StridedRange(0, 90, 3), AccessKind::Write, 0, C.T0);
  EXPECT_EQ(S.mode(), ArrayShadow::Mode::Fine);
}

TEST(GridShadow, RaggedTailHandled) {
  // Length not divisible by the stride: the last window is short.
  Clocks C;
  ArrayShadow S(11, true, C.Pool);
  auto R = S.apply(StridedRange(0, 11, 2), AccessKind::Write, 0, C.T0);
  EXPECT_EQ(R.ShadowOps, 1u); // {0,2,4,6,8,10} = class 0 entirely.
  auto R2 = S.apply(StridedRange(1, 11, 2), AccessKind::Write, 0, C.T0);
  EXPECT_EQ(R2.ShadowOps, 1u); // {1,3,5,7,9} = class 1 entirely.
  EXPECT_EQ(S.locationCount(), 2u);
}

TEST(GridShadow, NegativeBeginClippedPhaseCorrectly) {
  // Clipping [-3..9:2) must keep the odd phase: {1,3,5,7} not {0,2,...}.
  Clocks C;
  ArrayShadow S(10, true, C.Pool);
  S.apply(StridedRange(1, 10, 2), AccessKind::Write, 0, C.T0); // K=2, class 1.
  auto R = S.apply(StridedRange(-3, 9, 2), AccessKind::Write, 1, C.T1);
  // Same (odd) class: unordered threads race.
  EXPECT_FALSE(R.Races.empty());
}

TEST(GridShadow, RefinementPreservesHistoryAcrossSplits) {
  Clocks C;
  ArrayShadow S(64, true, C.Pool);
  S.apply(StridedRange(0, 64), AccessKind::Write, 0, C.T0); // Coarse op.
  // A later strided sweep by an unordered thread must still see T0's
  // write even though the representation re-grids.
  auto R = S.apply(StridedRange(0, 64, 4), AccessKind::Write, 1, C.T1);
  EXPECT_FALSE(R.Races.empty());
}
