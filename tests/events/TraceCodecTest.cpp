//===- TraceCodecTest.cpp - Round-trip fuzz for the trace codec --------------===//
//
// Part of the BigFoot reproduction. See README.md for details.
//
// Seeded-RNG round-trip fuzz: generate random event streams exercising
// every kind, maximum-width thread ids, field ids at the kLocFieldBits
// ceiling, full-range int64 array bounds (stride >= 1, as StridedRange
// requires), and random batch splits — then decode and demand exact
// field-for-field equality. Separately, every truncation prefix of a
// valid trace and a set of targeted corruptions must surface as decode
// errors, never as crashes, hangs, or out-of-bounds reads.
//
//===----------------------------------------------------------------------===//

#include "events/TraceCodec.h"
#include "support/Symbol.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

using namespace bigfoot;

namespace {

/// One generated event plus the payload words it owns (self-contained so
/// the expected stream survives re-batching on decode).
struct FuzzEvent {
  Event E;
  std::vector<uint32_t> Words;
};

using Rng = std::mt19937_64;

uint64_t pick(Rng &R, uint64_t Lo, uint64_t Hi) {
  return std::uniform_int_distribution<uint64_t>(Lo, Hi)(R);
}

FuzzEvent randomEvent(Rng &R, uint32_t NumSyms) {
  FuzzEvent F;
  Event &E = F.E;
  E.Kind = static_cast<EventKind>(pick(R, 0, kNumEventKinds - 1));
  E.Target = static_cast<uint8_t>(pick(R, 1, 3));
  E.Access = pick(R, 0, 1) ? AccessKind::Write : AccessKind::Read;
  // Max-width tids: the scheduler never exceeds 2^16-1 threads.
  E.Tid = static_cast<ThreadId>(pick(R, 0, 0xFFFF));
  // Object ids stay below the locKey ceiling (64 - kLocFieldBits bits);
  // only the kinds whose encoding carries one get a nonzero id, matching
  // what the VM's emission populates.
  auto randomObj = [&] {
    E.Obj = pick(R, 0, (uint64_t(1) << (64 - kLocFieldBits)) - 1);
  };

  switch (E.Kind) {
  case EventKind::FieldCheck: {
    randomObj();
    uint32_t N = static_cast<uint32_t>(pick(R, 1, 12));
    for (uint32_t I = 0; I < N; ++I)
      F.Words.push_back(static_cast<uint32_t>(pick(R, 0, NumSyms - 1)));
    break;
  }
  case EventKind::ArrayCheck: {
    randomObj();
    // Full-range bounds; deltas between consecutive events span the whole
    // signed domain, which is exactly what zigzag must survive.
    E.Begin = static_cast<int64_t>(pick(R, 0, UINT64_MAX) >> 2) *
              (pick(R, 0, 1) ? 1 : -1);
    E.End = E.Begin + static_cast<int64_t>(pick(R, 0, 1u << 20));
    E.Stride = static_cast<int64_t>(pick(R, 1, 1u << 16));
    break;
  }
  case EventKind::ArrayAlloc:
    randomObj();
    E.Tid = 0; // The codec does not record an allocating thread.
    E.Aux = pick(R, 0, UINT64_MAX);
    break;
  case EventKind::Acquire:
  case EventKind::Release:
    randomObj();
    break;
  case EventKind::VolatileRead:
  case EventKind::VolatileWrite:
    randomObj();
    // Field ids at the kLocFieldBits ceiling.
    E.Field = static_cast<FieldId>(pick(R, 0, kLocFieldMask));
    break;
  case EventKind::Fork:
  case EventKind::Join:
    E.Aux = pick(R, 0, 0xFFFF);
    break;
  case EventKind::Barrier: {
    E.Tid = 0; // Barriers are collective; no single acting thread.
    uint32_t N = static_cast<uint32_t>(pick(R, 0, 8));
    for (uint32_t I = 0; I < N; ++I)
      F.Words.push_back(static_cast<uint32_t>(pick(R, 0, 0xFFFF)));
    break;
  }
  case EventKind::ThreadBegin:
  case EventKind::ThreadExit:
  case EventKind::Commit:
    break;
  }
  return F;
}

/// Encodes \p Stream into a finished trace using random batch splits.
std::vector<uint8_t> encode(const std::vector<FuzzEvent> &Stream,
                            const SymbolTable &Syms,
                            const DetectorConfig &Cfg,
                            const TraceSummary &Summary, Rng &R) {
  TraceWriter Writer(Syms, Cfg);
  size_t I = 0;
  while (I < Stream.size()) {
    size_t N = std::min<size_t>(Stream.size() - I, pick(R, 1, 17));
    std::vector<Event> Batch;
    std::vector<uint32_t> Payload;
    for (size_t J = 0; J < N; ++J) {
      Event E = Stream[I + J].E;
      E.PayloadIndex = static_cast<uint32_t>(Payload.size());
      E.PayloadCount = static_cast<uint32_t>(Stream[I + J].Words.size());
      Payload.insert(Payload.end(), Stream[I + J].Words.begin(),
                     Stream[I + J].Words.end());
      Batch.push_back(E);
    }
    Writer.consumeBatch(Batch.data(), Batch.size(),
                        Payload.empty() ? nullptr : Payload.data());
    I += N;
  }
  Writer.finish(Summary);
  return Writer.buffer();
}

void expectEventEq(const Event &Got, const std::vector<uint32_t> &GotWords,
                   const FuzzEvent &Want, size_t Index) {
  std::string Tag = "event " + std::to_string(Index);
  ASSERT_EQ(Got.Kind, Want.E.Kind) << Tag;
  EXPECT_EQ(Got.Target, Want.E.Target) << Tag;
  EXPECT_EQ(Got.Tid, Want.E.Tid) << Tag;
  EXPECT_EQ(Got.Obj, Want.E.Obj) << Tag;
  switch (Want.E.Kind) {
  case EventKind::FieldCheck:
    EXPECT_EQ(Got.Access, Want.E.Access) << Tag;
    EXPECT_EQ(GotWords, Want.Words) << Tag;
    break;
  case EventKind::ArrayCheck:
    EXPECT_EQ(Got.Access, Want.E.Access) << Tag;
    EXPECT_EQ(Got.Begin, Want.E.Begin) << Tag;
    EXPECT_EQ(Got.End, Want.E.End) << Tag;
    EXPECT_EQ(Got.Stride, Want.E.Stride) << Tag;
    break;
  case EventKind::ArrayAlloc:
  case EventKind::Fork:
  case EventKind::Join:
    EXPECT_EQ(Got.Aux, Want.E.Aux) << Tag;
    break;
  case EventKind::VolatileRead:
  case EventKind::VolatileWrite:
    EXPECT_EQ(Got.Field, Want.E.Field) << Tag;
    break;
  case EventKind::Barrier:
    EXPECT_EQ(GotWords, Want.Words) << Tag;
    break;
  case EventKind::Acquire:
  case EventKind::Release:
  case EventKind::ThreadBegin:
  case EventKind::ThreadExit:
  case EventKind::Commit:
    break;
  }
}

SymbolTable fuzzSymbols(uint32_t N) {
  SymbolTable Syms;
  for (uint32_t I = 0; I < N; ++I)
    Syms.intern("field_" + std::to_string(I));
  return Syms;
}

DetectorConfig fuzzConfig() {
  DetectorConfig Cfg;
  Cfg.Name = "fuzz";
  Cfg.DeferArrayChecks = true;
  Cfg.AdaptiveArrayShadow = false;
  Cfg.VectorClocksOnly = true;
  Cfg.FieldProxy = {{"field_1", "field_0"}, {"field_2", "field_0"}};
  return Cfg;
}

TraceSummary fuzzSummary() {
  TraceSummary S;
  S.Ok = true;
  S.StatementsExecuted = 123456789;
  S.Output = {"hello", "", "line with spaces"};
  S.Counters = {{"vm.accesses", 42}, {"vm.steps", UINT64_MAX}};
  return S;
}

TEST(TraceCodec, RoundTripFuzz) {
  constexpr uint32_t kNumSyms = 64;
  SymbolTable Syms = fuzzSymbols(kNumSyms);
  DetectorConfig Cfg = fuzzConfig();
  TraceSummary Summary = fuzzSummary();

  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Rng R(Seed);
    size_t Len = static_cast<size_t>(pick(R, 0, 400));
    std::vector<FuzzEvent> Stream;
    for (size_t I = 0; I < Len; ++I)
      Stream.push_back(randomEvent(R, kNumSyms));

    std::vector<uint8_t> Buf = encode(Stream, Syms, Cfg, Summary, R);

    TraceReader Reader;
    ASSERT_TRUE(Reader.open(Buf.data(), Buf.size()))
        << "seed " << Seed << ": " << Reader.error();

    // Header round-trip.
    ASSERT_EQ(Reader.symbols().size(), Syms.size()) << "seed " << Seed;
    for (SymId Id = 0; Id < Syms.size(); ++Id)
      EXPECT_EQ(Reader.symbols().name(Id), Syms.name(Id));
    EXPECT_EQ(Reader.config().Name, Cfg.Name);
    EXPECT_EQ(Reader.config().DeferArrayChecks, Cfg.DeferArrayChecks);
    EXPECT_EQ(Reader.config().AdaptiveArrayShadow, Cfg.AdaptiveArrayShadow);
    EXPECT_EQ(Reader.config().VectorClocksOnly, Cfg.VectorClocksOnly);
    EXPECT_EQ(Reader.config().FieldProxy, Cfg.FieldProxy);

    // Event round-trip under a decode batch size unrelated to the encode
    // splits.
    size_t BatchSize = static_cast<size_t>(pick(R, 1, 33));
    std::vector<Event> Batch(BatchSize);
    std::vector<uint32_t> Payload;
    size_t Next = 0, N;
    while ((N = Reader.nextBatch(Batch.data(), BatchSize, Payload)) > 0) {
      for (size_t I = 0; I < N; ++I) {
        ASSERT_LT(Next, Stream.size()) << "seed " << Seed << ": extra events";
        std::vector<uint32_t> Words(
            Payload.begin() + Batch[I].PayloadIndex,
            Payload.begin() + Batch[I].PayloadIndex + Batch[I].PayloadCount);
        expectEventEq(Batch[I], Words, Stream[Next], Next);
        ++Next;
      }
    }
    ASSERT_TRUE(Reader.ok()) << "seed " << Seed << ": " << Reader.error();
    EXPECT_EQ(Next, Stream.size()) << "seed " << Seed;
    EXPECT_EQ(Reader.eventsDecoded(), Stream.size()) << "seed " << Seed;

    // Summary round-trip.
    ASSERT_TRUE(Reader.summaryReady()) << "seed " << Seed;
    EXPECT_EQ(Reader.summary().Ok, Summary.Ok);
    EXPECT_EQ(Reader.summary().Error, Summary.Error);
    EXPECT_EQ(Reader.summary().Output, Summary.Output);
    EXPECT_EQ(Reader.summary().StatementsExecuted,
              Summary.StatementsExecuted);
    EXPECT_EQ(Reader.summary().Counters, Summary.Counters);
  }
}

/// Drains a reader until it stops; returns true iff the stream decoded
/// cleanly end to end (summary included).
bool drainsCleanly(TraceReader &Reader) {
  Event Batch[32];
  std::vector<uint32_t> Payload;
  while (Reader.nextBatch(Batch, 32, Payload) > 0)
    ;
  return Reader.ok() && Reader.summaryReady();
}

TEST(TraceCodec, EveryTruncationFailsCleanly) {
  Rng R(7);
  SymbolTable Syms = fuzzSymbols(8);
  std::vector<FuzzEvent> Stream;
  for (size_t I = 0; I < 40; ++I)
    Stream.push_back(randomEvent(R, 8));
  std::vector<uint8_t> Buf =
      encode(Stream, Syms, fuzzConfig(), fuzzSummary(), R);

  for (size_t Cut = 0; Cut < Buf.size(); ++Cut) {
    TraceReader Reader;
    if (!Reader.open(Buf.data(), Cut)) {
      EXPECT_FALSE(Reader.error().empty()) << "cut " << Cut;
      continue; // Header truncation: rejected at open().
    }
    // Header survived the cut; the event stream or summary must not
    // decode to a complete, clean result.
    EXPECT_FALSE(drainsCleanly(Reader)) << "cut " << Cut;
    EXPECT_FALSE(Reader.ok()) << "cut " << Cut;
    EXPECT_FALSE(Reader.error().empty()) << "cut " << Cut;
  }

  // The untruncated buffer still decodes, so the loop above was not
  // passing vacuously.
  TraceReader Full;
  ASSERT_TRUE(Full.open(Buf.data(), Buf.size())) << Full.error();
  EXPECT_TRUE(drainsCleanly(Full)) << Full.error();
}

TEST(TraceCodec, TargetedCorruptionsFailCleanly) {
  Rng R(11);
  SymbolTable Syms = fuzzSymbols(4);
  std::vector<FuzzEvent> Stream;
  for (size_t I = 0; I < 10; ++I)
    Stream.push_back(randomEvent(R, 4));
  std::vector<uint8_t> Good =
      encode(Stream, Syms, fuzzConfig(), fuzzSummary(), R);

  // Bad magic.
  {
    std::vector<uint8_t> Bad = Good;
    Bad[0] = 'X';
    TraceReader Reader;
    EXPECT_FALSE(Reader.open(Bad.data(), Bad.size()));
    EXPECT_NE(Reader.error().find("magic"), std::string::npos);
  }
  // Empty input.
  {
    TraceReader Reader;
    EXPECT_FALSE(Reader.open(nullptr, 0));
  }
  // Unknown section tag where SYMBOLS should start.
  {
    std::vector<uint8_t> Bad = Good;
    Bad[4] = 0x77;
    TraceReader Reader;
    EXPECT_FALSE(Reader.open(Bad.data(), Bad.size()));
  }
  // A zero stride in an ArrayCheck must be rejected (StridedRange asserts
  // on it, so the reader has to catch it first). Build a minimal trace by
  // hand-encoding one bad event: kind=ArrayCheck, target=tool.
  {
    TraceWriter Writer(Syms, fuzzConfig());
    std::vector<uint8_t> Bad = Writer.buffer(); // magic + header + EVENTS tag
    Bad.push_back(static_cast<uint8_t>(
        static_cast<unsigned>(EventKind::ArrayCheck) | (1u << 6)));
    Bad.push_back(0); // tid
    Bad.push_back(0); // obj delta
    Bad.push_back(0); // access
    Bad.push_back(0); // begin delta
    Bad.push_back(2); // end - begin = 1
    Bad.push_back(0); // stride 0 — invalid
    TraceReader Reader;
    ASSERT_TRUE(Reader.open(Bad.data(), Bad.size())) << Reader.error();
    Event Batch[4];
    std::vector<uint32_t> Payload;
    EXPECT_EQ(Reader.nextBatch(Batch, 4, Payload), 0u);
    EXPECT_FALSE(Reader.ok());
    EXPECT_NE(Reader.error().find("stride"), std::string::npos);
  }
  // Nonexistent file path.
  {
    TraceReader Reader;
    EXPECT_FALSE(Reader.openFile("/nonexistent/trace.bft"));
    EXPECT_FALSE(Reader.error().empty());
  }
}

} // namespace
