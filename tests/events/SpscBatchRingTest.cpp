//===- SpscBatchRingTest.cpp - Async pipeline and sink edge cases ------------===//
//
// Part of the BigFoot reproduction. See README.md for details.
//
// Coverage for the asynchronous detection pipeline's moving parts
// (DESIGN.md Sec. 10) plus producer-side sink edges the differential
// goldens never reach: the SPSC batch ring under a real producer/consumer
// thread pair with randomized batch sizes, AsyncSink's drain and
// backpressure protocol, EventRing capacity clamping and empty flushes,
// and TeeSink fan-out / mid-stream rebinding.
//
//===----------------------------------------------------------------------===//

#include "events/AsyncSink.h"
#include "events/EventSink.h"
#include "events/ShardedSink.h"
#include "events/SpscBatchRing.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

using namespace bigfoot;

namespace {

/// Flattens every consumed event (and its payload words) into one log, so
/// tests can assert on exact delivery: counts, order, batch boundaries.
struct RecordingSink final : public EventSink {
  std::vector<Event> Events;
  std::vector<std::vector<uint32_t>> PayloadPerEvent;
  std::vector<size_t> BatchSizes;

  void consumeBatch(const Event *E, size_t N, const uint32_t *Payload) override {
    BatchSizes.push_back(N);
    for (size_t I = 0; I < N; ++I) {
      Events.push_back(E[I]);
      PayloadPerEvent.emplace_back(Payload + E[I].PayloadIndex,
                                   Payload + E[I].PayloadIndex +
                                       E[I].PayloadCount);
    }
  }
};

Event seqEvent(uint64_t Seq) {
  Event E;
  E.Kind = EventKind::Acquire;
  E.Tid = 1;
  E.Obj = 7;
  E.Aux = Seq; // Sequence number rides in Aux for order checks.
  return E;
}

//===--- SpscBatchRing --------------------------------------------------------

// The core stress: a real producer thread publishing batches of
// randomized sizes through a shallow ring (so wraparound and full-ring
// backpressure both happen constantly) while a consumer drains them. The
// consumer must observe every event exactly once, in publication order,
// with each event's payload intact.
TEST(SpscBatchRing, StressRandomizedBatchesKeepOrder) {
  constexpr uint64_t kTotalEvents = 50000;
  SpscBatchRing Ring(4);
  std::atomic<bool> Stop{false};

  std::vector<uint64_t> Consumed;
  Consumed.reserve(kTotalEvents);
  std::vector<uint32_t> PayloadSums;
  std::thread Consumer([&] {
    for (;;) {
      EventBatch *B = Ring.waitPeek(Stop);
      if (!B)
        return;
      for (const Event &E : B->Events) {
        Consumed.push_back(E.Aux);
        uint32_t Sum = 0;
        for (uint32_t I = 0; I < E.PayloadCount; ++I)
          Sum += B->Payload[E.PayloadIndex + I];
        PayloadSums.push_back(Sum);
      }
      Ring.pop();
    }
  });

  std::mt19937_64 Rng(42);
  std::vector<Event> Batch;
  std::vector<uint32_t> Payload;
  uint64_t Seq = 0, BatchesSent = 0;
  while (Seq < kTotalEvents) {
    size_t N = 1 + Rng() % 97; // 1..97 events per batch.
    if (N > kTotalEvents - Seq)
      N = size_t(kTotalEvents - Seq);
    Batch.clear();
    Payload.clear();
    for (size_t I = 0; I < N; ++I) {
      Event E = seqEvent(Seq);
      // Every third event carries payload: two words derived from Seq.
      if (Seq % 3 == 0) {
        E.PayloadIndex = uint32_t(Payload.size());
        E.PayloadCount = 2;
        Payload.push_back(uint32_t(Seq));
        Payload.push_back(uint32_t(Seq >> 3));
      }
      Batch.push_back(E);
      ++Seq;
    }
    EventBatch &Slot = Ring.acquireSlot();
    Slot.assign(Batch.data(), Batch.size(), Payload.data());
    Ring.publish();
    ++BatchesSent;
  }
  Ring.drain();
  Stop.store(true, std::memory_order_release);
  Ring.wakeConsumer();
  Consumer.join();

  // No lost, duplicated, or reordered events: the consumed sequence is
  // exactly 0..N-1.
  ASSERT_EQ(Consumed.size(), kTotalEvents);
  for (uint64_t I = 0; I < kTotalEvents; ++I)
    ASSERT_EQ(Consumed[size_t(I)], I) << "at index " << I;
  ASSERT_EQ(PayloadSums.size(), kTotalEvents);
  for (uint64_t I = 0; I < kTotalEvents; ++I) {
    uint32_t Want = I % 3 == 0 ? uint32_t(I) + uint32_t(I >> 3) : 0;
    ASSERT_EQ(PayloadSums[size_t(I)], Want) << "payload at " << I;
  }
  EXPECT_EQ(Ring.published(), BatchesSent);
}

// The shutdown edge under the sanitizers: the producer publishes its
// final batches and immediately sets Stop + wakes — no drain() — so the
// stop signal races the consumer's last waitPeek/pop round. The
// publish-before-Stop release ordering is the contract under test: a
// consumer that observes Stop with an empty ring must already have seen
// every published batch, so nothing can be lost on any interleaving.
// Many short rounds vary where the race lands (consumer asleep, mid-pop,
// between peek and wait).
TEST(SpscBatchRing, StopSignalRacesFinalPublish) {
  for (int Round = 0; Round < 200; ++Round) {
    SpscBatchRing Ring(2);
    std::atomic<bool> Stop{false};
    std::atomic<uint64_t> Consumed{0};
    std::thread Consumer([&] {
      for (;;) {
        EventBatch *B = Ring.waitPeek(Stop);
        if (!B)
          return; // Stop observed with an empty ring: nothing more comes.
        Consumed.fetch_add(B->Events.size(), std::memory_order_relaxed);
        Ring.pop();
      }
    });
    uint64_t Sent = 0;
    size_t Batches = 1 + size_t(Round) % 7;
    std::vector<Event> Evs;
    for (size_t B = 0; B < Batches; ++B) {
      Evs.clear();
      size_t N = 1 + (size_t(Round) + B) % 5;
      for (size_t I = 0; I < N; ++I)
        Evs.push_back(seqEvent(Sent++));
      EventBatch &Slot = Ring.acquireSlot();
      Slot.assign(Evs.data(), Evs.size(), nullptr);
      Ring.publish();
    }
    Stop.store(true, std::memory_order_release);
    Ring.wakeConsumer();
    Consumer.join();
    ASSERT_EQ(Consumed.load(), Sent) << "round " << Round;
  }
}

// Ring destruction while the consumer thread is mid-batch: the owner
// (here playing AsyncSink's destructor sequence) must drain, signal, and
// join before the ring's storage goes away, every round, with a slow
// consumer guaranteeing destruction overlaps active consumption.
TEST(SpscBatchRing, DestructionBehindDrainJoinsActiveConsumer) {
  for (int Round = 0; Round < 30; ++Round) {
    uint64_t Consumed = 0, Sent = 0;
    {
      SpscBatchRing Ring(2);
      std::atomic<bool> Stop{false};
      std::thread Consumer([&] {
        for (;;) {
          EventBatch *B = Ring.waitPeek(Stop);
          if (!B)
            return;
          // Slow apply: the producer's drain overlaps a busy consumer.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          Consumed += B->Events.size();
          Ring.pop();
        }
      });
      std::vector<Event> Evs;
      for (size_t B = 0; B < 4; ++B) {
        Evs.clear();
        for (size_t I = 0; I < 3; ++I)
          Evs.push_back(seqEvent(Sent++));
        EventBatch &Slot = Ring.acquireSlot();
        Slot.assign(Evs.data(), Evs.size(), nullptr);
        Ring.publish();
      }
      Ring.drain();
      Stop.store(true, std::memory_order_release);
      Ring.wakeConsumer();
      Consumer.join();
    } // Ring destroyed here; the join above must have made that safe.
    ASSERT_EQ(Consumed, Sent) << "round " << Round;
  }
}

// drain() on a never-used ring returns immediately, and a sub-minimum
// capacity is clamped rather than rejected.
TEST(SpscBatchRing, DrainOnEmptyAndCapacityClamp) {
  SpscBatchRing Ring(0);
  EXPECT_GE(Ring.capacity(), 2u);
  Ring.drain(); // Must not block.
  EXPECT_EQ(Ring.peek(), nullptr);
  EXPECT_EQ(Ring.published(), 0u);
  EXPECT_EQ(Ring.fullStalls(), 0u);
}

//===--- AsyncSink ------------------------------------------------------------

// Events pushed through an AsyncSink arrive at the downstream sink
// complete and in order once drain() returns — the property the VM's
// result-sampling depends on.
TEST(AsyncSink, DrainDeliversEverythingInOrder) {
  RecordingSink Downstream;
  AsyncSink Async(Downstream, 4);

  constexpr uint64_t kEvents = 10000;
  std::vector<Event> Batch;
  uint64_t Seq = 0;
  while (Seq < kEvents) {
    Batch.clear();
    for (size_t I = 0; I < 64 && Seq < kEvents; ++I)
      Batch.push_back(seqEvent(Seq++));
    Async.consumeBatch(Batch.data(), Batch.size(), nullptr);
  }
  Async.drain();

  ASSERT_EQ(Downstream.Events.size(), kEvents);
  for (uint64_t I = 0; I < kEvents; ++I)
    ASSERT_EQ(Downstream.Events[size_t(I)].Aux, I);
  EXPECT_EQ(Async.batchesConsumed(), (kEvents + 63) / 64);
}

/// Downstream sink that sleeps per batch, forcing the producer into the
/// ring-full path.
struct SlowSink final : public EventSink {
  std::atomic<uint64_t> Seen{0};
  void consumeBatch(const Event *, size_t N, const uint32_t *) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Seen.fetch_add(N, std::memory_order_relaxed);
  }
};

// A slow consumer behind a shallow ring must throttle the producer
// (bounded memory — the backpressure contract) without dropping events.
TEST(AsyncSink, BackpressureThrottlesWithoutLoss) {
  SlowSink Downstream;
  constexpr uint64_t kBatches = 32;
  uint64_t Sent = 0;
  {
    AsyncSink Async(Downstream, 2);
    Event E = seqEvent(0);
    for (uint64_t B = 0; B < kBatches; ++B) {
      Async.consumeBatch(&E, 1, nullptr);
      ++Sent;
    }
    Async.drain();
    EXPECT_EQ(Downstream.Seen.load(), Sent);
    EXPECT_GT(Async.producerStalls(), 0u);
    EXPECT_GT(Async.detectorSeconds(), 0.0);
    EXPECT_EQ(Async.batchesConsumed(), kBatches);
  } // Destructor: drain + join must be clean after heavy backpressure.
  EXPECT_EQ(Downstream.Seen.load(), Sent);
}

// The sink destroyed while its worker is provably mid-batch, many
// rounds: no drain() call, a slow downstream, and a shallow ring mean
// the destructor's drain/stop/join sequence always lands on an active
// consumer. Every published event must still reach the downstream sink
// before the destructor returns — shutdown may never drop work.
TEST(AsyncSink, DestructorRacesActiveConsumerManyRounds) {
  for (int Round = 0; Round < 50; ++Round) {
    SlowSink Downstream;
    uint64_t Sent = 0;
    {
      AsyncSink Async(Downstream, 2);
      Event E = seqEvent(0);
      for (int B = 0; B < 5; ++B) {
        Async.consumeBatch(&E, 1, nullptr);
        ++Sent;
      }
    } // No drain(): the destructor owns the full shutdown handshake.
    ASSERT_EQ(Downstream.Seen.load(), Sent) << "round " << Round;
  }
}

// Empty batches are dropped at the producer side; destruction without
// drain() still delivers everything published.
TEST(AsyncSink, EmptyBatchesAndDestructorDrain) {
  RecordingSink Downstream;
  {
    AsyncSink Async(Downstream, 4);
    Event E = seqEvent(1);
    Async.consumeBatch(&E, 0, nullptr); // No-op.
    Async.consumeBatch(&E, 1, nullptr);
  } // No explicit drain: the destructor must flush the ring.
  ASSERT_EQ(Downstream.Events.size(), 1u);
  EXPECT_EQ(Downstream.Events[0].Aux, 1u);
}

//===--- ShardedSink ----------------------------------------------------------

// The fan-out sink's destructor without finish(): N worker lanes (and an
// oracle lane) are joined mid-stream, with shallow rings so teardown
// overlaps busy workers. Exercised across shard counts and many rounds
// so the sanitizer jobs see every lane-shutdown interleaving; finish()'s
// merge is deliberately skipped — abandoning a sharded run must still
// shut down cleanly.
TEST(ShardedSink, DestructorWithoutFinishJoinsAllLanes) {
  for (int Round = 0; Round < 24; ++Round) {
    ShardedSink::Options SO;
    SO.Shards = 1 + size_t(Round) % 4;
    SO.RingBatches = 2;
    SO.Tool = fastTrackConfig();
    SO.Oracle = Round % 2 == 0;
    SO.OracleCfg = fastTrackConfig();
    ShardedSink Sink(std::move(SO));

    // A mix of routed checks (spread over objects, so every lane gets
    // work) and broadcast sync edges, in several small batches.
    std::vector<Event> Batch;
    std::vector<uint32_t> Payload;
    for (int B = 0; B < 6; ++B) {
      Batch.clear();
      Payload.clear();
      for (uint64_t I = 0; I < 16; ++I) {
        Event E;
        E.Tid = 1;
        E.Target = kTargetBoth;
        if (I % 8 == 7) {
          E.Kind = I % 16 == 7 ? EventKind::Acquire : EventKind::Release;
          E.Obj = 100;
        } else {
          E.Kind = EventKind::FieldCheck;
          E.Obj = 1 + (uint64_t(B) * 16 + I) % 13;
          E.PayloadIndex = uint32_t(Payload.size());
          E.PayloadCount = 1;
          Payload.push_back(uint32_t(I % 3));
        }
        Batch.push_back(E);
      }
      Sink.consumeBatch(Batch.data(), Batch.size(), Payload.data());
    }
  } // Destructor: drain + stop + join every lane, no finish().
}

// finish() after the same traffic is complete and deterministic: the
// merged counters must partition-sum identically no matter how lane
// scheduling interleaved, and the ordering invariant must hold. Rounds
// alternate between split-state (sync table) and legacy broadcast mode,
// so this also pins the two sync-state paths to byte-identical counters
// — only the fan-out accounting may differ.
TEST(ShardedSink, FinishAfterBroadcastHeavyTrafficIsDeterministic) {
  Stats Reference;
  for (int Round = 0; Round < 8; ++Round) {
    const bool Table = Round % 2 == 0;
    ShardedSink::Options SO;
    SO.Shards = 3;
    SO.RingBatches = 2;
    SO.Tool = fastTrackConfig();
    SO.SyncTable = Table;
    ShardedSink Sink(std::move(SO));
    std::vector<Event> Batch;
    std::vector<uint32_t> Payload;
    for (int B = 0; B < 8; ++B) {
      Batch.clear();
      Payload.clear();
      for (uint64_t I = 0; I < 12; ++I) {
        Event E;
        E.Tid = 1;
        if (I % 4 == 3) {
          E.Kind = I % 8 == 3 ? EventKind::Acquire : EventKind::Release;
          E.Obj = 42;
        } else {
          E.Kind = EventKind::FieldCheck;
          E.Obj = 1 + (uint64_t(B) * 12 + I) % 7;
          E.PayloadIndex = uint32_t(Payload.size());
          E.PayloadCount = 1;
          Payload.push_back(uint32_t(I % 2));
        }
        Batch.push_back(E);
      }
      Sink.consumeBatch(Batch.data(), Batch.size(), Payload.data());
    }
    Sink.drain();
    ShardedSink::Merged M = Sink.finish();
    EXPECT_EQ(M.OrderViolations, 0u) << "round " << Round;
    if (Table) {
      EXPECT_EQ(M.BroadcastCopies, 0u) << "round " << Round;
      EXPECT_EQ(M.HorizonAdvances, M.BroadcastEvents * 3)
          << "round " << Round;
      EXPECT_GT(M.SyncPublishes, 0u) << "round " << Round;
    } else {
      EXPECT_EQ(M.BroadcastCopies, M.BroadcastEvents * 3)
          << "round " << Round;
      EXPECT_EQ(M.HorizonAdvances, 0u) << "round " << Round;
    }
    if (Round == 0)
      Reference = M.Counters;
    else
      EXPECT_TRUE(M.Counters.all() == Reference.all())
          << "round " << Round << ": merged counters diverged";
  }
}

//===--- EventRing edge cases -------------------------------------------------

// Capacity 0 clamps to per-event dispatch instead of tripping an assert:
// every emit flushes a one-event batch.
TEST(EventRing, ZeroCapacityResetClampsToPerEvent) {
  RecordingSink Sink;
  EventRing Ring;
  Ring.reset(&Sink, 0);
  for (uint64_t I = 0; I < 3; ++I)
    Ring.emit(seqEvent(I));
  ASSERT_EQ(Sink.Events.size(), 3u);
  EXPECT_EQ(Sink.BatchSizes, (std::vector<size_t>{1, 1, 1}));
}

// flush() with nothing buffered must not reach the sink (consumers treat
// every consumeBatch as meaningful work).
TEST(EventRing, FlushOnEmptyIsANoOp) {
  RecordingSink Sink;
  EventRing Ring;
  Ring.reset(&Sink, 8);
  Ring.flush();
  EXPECT_TRUE(Sink.BatchSizes.empty());
  Ring.emit(seqEvent(0));
  Ring.flush();
  Ring.flush(); // Second flush: batch already delivered, nothing new.
  EXPECT_EQ(Sink.BatchSizes, (std::vector<size_t>{1}));
}

// reset() mid-stream rebinds to a new sink: flushed events stay with the
// old sink, buffered-but-unflushed events are dropped (reset is a
// rebind, not a handoff), and new emits go to the new sink with
// batch-relative payload indices starting over.
TEST(EventRing, SinkReplacementMidStream) {
  RecordingSink A, B;
  EventRing Ring;
  Ring.reset(&A, 4);
  uint32_t Words[2] = {11, 22};
  Ring.emit(seqEvent(0), Words, 2);
  Ring.flush();
  Ring.emit(seqEvent(1)); // Buffered, never flushed before the rebind.
  Ring.reset(&B, 4);
  uint32_t More[1] = {33};
  Ring.emit(seqEvent(2), More, 1);
  Ring.flush();

  ASSERT_EQ(A.Events.size(), 1u);
  EXPECT_EQ(A.Events[0].Aux, 0u);
  EXPECT_EQ(A.PayloadPerEvent[0], (std::vector<uint32_t>{11, 22}));
  ASSERT_EQ(B.Events.size(), 1u);
  EXPECT_EQ(B.Events[0].Aux, 2u);
  EXPECT_EQ(B.Events[0].PayloadIndex, 0u); // Arena restarted at rebind.
  EXPECT_EQ(B.PayloadPerEvent[0], (std::vector<uint32_t>{33}));
}

//===--- TeeSink --------------------------------------------------------------

// Fan-out hits every sink in add() order with the same batch; null adds
// are ignored; sole() only short-circuits a singleton tee.
TEST(TeeSink, FanOutOrderAndSoleSemantics) {
  RecordingSink A, B;
  TeeSink Tee;
  Tee.add(nullptr);
  EXPECT_EQ(Tee.size(), 0u);
  Tee.add(&A);
  EXPECT_EQ(Tee.sole(), &A);
  Tee.add(&B);
  EXPECT_EQ(Tee.sole(), nullptr); // Two sinks: no single fast path.

  Event E[2] = {seqEvent(5), seqEvent(6)};
  Tee.consumeBatch(E, 2, nullptr);
  ASSERT_EQ(A.Events.size(), 2u);
  ASSERT_EQ(B.Events.size(), 2u);
  EXPECT_EQ(A.Events[1].Aux, 6u);
  EXPECT_EQ(B.Events[1].Aux, 6u);
  EXPECT_EQ(A.BatchSizes, B.BatchSizes);
}

} // namespace
