//===- EventStreamEquivalenceTest.cpp - Dispatch-mode differential -----------===//
//
// Part of the BigFoot reproduction. See README.md for details.
//
// Golden differential for the execution/detection decoupling: the three
// ways a detector can consume the event stream — per-event dispatch (ring
// capacity 1), batched dispatch (the default ring), and offline replay of
// a recorded trace — must produce byte-identical results. Coverage grid
// matches the interning golden test: every workload (standard suite at
// Test scale plus the racy variants) × all six detector configurations ×
// three scheduler seeds, with the ground-truth oracle attached so
// oracle-targeted events are exercised too.
//
//===----------------------------------------------------------------------===//

#include "bfj/Parser.h"
#include "events/Replay.h"
#include "events/TraceCodec.h"
#include "instrument/Instrumenters.h"
#include "runtime/Detector.h"
#include "vm/Vm.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace bigfoot;

namespace {

/// The six configurations the paper's Figure 2 table evaluates, mirroring
/// harness/Experiment.cpp.
std::vector<InstrumentedProgram> allSixConfigs(const Program &P) {
  std::vector<InstrumentedProgram> All;
  All.push_back(instrumentFastTrack(P));
  All.push_back(instrumentRedCard(P));
  All.push_back(instrumentSlimState(P));
  All.push_back(instrumentSlimCard(P));
  All.push_back(instrumentBigFoot(P));
  InstrumentedProgram Djit = instrumentFastTrack(P);
  Djit.Tool = djitConfig();
  All.push_back(std::move(Djit));
  return All;
}

/// What the recording run stores in the trace (mirrors the harness).
TraceSummary summaryOf(const VmResult &Run) {
  TraceSummary S;
  S.Ok = Run.Ok;
  S.Error = Run.Error;
  S.Output = Run.Output;
  S.StatementsExecuted = Run.StatementsExecuted;
  for (const auto &[Name, Value] : Run.Counters.all())
    if (Name.rfind("tool.", 0) != 0)
      S.Counters[Name] = Value;
  return S;
}

void expectSameRun(const std::string &Tag, const VmResult &A,
                   const VmResult &B) {
  EXPECT_EQ(A.Ok, B.Ok) << Tag;
  EXPECT_EQ(A.Error, B.Error) << Tag;
  EXPECT_EQ(A.Output, B.Output) << Tag;
  EXPECT_EQ(A.StatementsExecuted, B.StatementsExecuted) << Tag;
  EXPECT_EQ(A.Counters.all(), B.Counters.all()) << Tag;
  EXPECT_EQ(A.ToolRacyLocations, B.ToolRacyLocations) << Tag;
  EXPECT_EQ(A.GroundTruthRacyLocations, B.GroundTruthRacyLocations) << Tag;
  ASSERT_EQ(A.ToolRaces.size(), B.ToolRaces.size()) << Tag;
  for (size_t I = 0; I < A.ToolRaces.size(); ++I)
    EXPECT_EQ(A.ToolRaces[I].str(), B.ToolRaces[I].str())
        << Tag << " race " << I;
}

void expectReplayMatches(const std::string &Tag, const VmResult &Run,
                         const ReplayResult &Rep) {
  EXPECT_EQ(Run.Ok, Rep.Ok) << Tag;
  EXPECT_EQ(Run.Error, Rep.Error) << Tag;
  EXPECT_EQ(Run.Output, Rep.Output) << Tag;
  EXPECT_EQ(Run.StatementsExecuted, Rep.StatementsExecuted) << Tag;
  EXPECT_EQ(Run.Counters.all(), Rep.Counters.all()) << Tag;
  EXPECT_EQ(Run.ToolRacyLocations, Rep.ToolRacyLocations) << Tag;
  EXPECT_EQ(Run.GroundTruthRacyLocations, Rep.GroundTruthRacyLocations)
      << Tag;
  ASSERT_EQ(Run.ToolRaces.size(), Rep.ToolRaces.size()) << Tag;
  for (size_t I = 0; I < Run.ToolRaces.size(); ++I)
    EXPECT_EQ(Run.ToolRaces[I].str(), Rep.ToolRaces[I].str())
        << Tag << " race " << I;
  ASSERT_EQ(Run.GroundTruthRaces.size(), Rep.GroundTruthRaces.size()) << Tag;
  for (size_t I = 0; I < Run.GroundTruthRaces.size(); ++I)
    EXPECT_EQ(Run.GroundTruthRaces[I].str(), Rep.GroundTruthRaces[I].str())
        << Tag << " oracle race " << I;
}

TEST(EventStreamEquivalence, DispatchModesAgreeEverywhere) {
  std::vector<Workload> Suite = standardSuite(SuiteScale::Test);
  for (Workload &W : racyVariants())
    Suite.push_back(std::move(W));
  for (const Workload &W : Suite) {
    ParseResult PR = parseProgram(W.Source);
    ASSERT_TRUE(PR.ok()) << W.Name << ": " << PR.Error;
    PR.Prog->internSymbols(); // The trace header needs the symbol table.
    std::vector<InstrumentedProgram> Configs = allSixConfigs(*PR.Prog);
    for (const InstrumentedProgram &IP : Configs) {
      for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
        std::string Tag =
            W.Name + "/" + IP.Tool.Name + "/seed" + std::to_string(Seed);

        VmOptions Opts;
        Opts.Seed = Seed;
        Opts.EnableGroundTruth = true;

        // Reference: per-event dispatch — ring capacity 1 flushes every
        // event straight through, the moral equivalent of the old direct
        // virtual call per event.
        Opts.EventBatch = 1;
        VmResult Inline = runProgram(*IP.Prog, IP.Tool, Opts);

        // Batched dispatch (the default), with a trace writer teeing off
        // the same stream the detectors consume.
        IP.Prog->internSymbols();
        TraceWriter Writer(IP.Prog->symbols(), IP.Tool);
        Opts.EventBatch = kDefaultEventBatch;
        Opts.RecordSink = &Writer;
        VmResult Batched = runProgram(*IP.Prog, IP.Tool, Opts);
        Writer.finish(summaryOf(Batched));

        expectSameRun(Tag + " inline-vs-batched", Inline, Batched);

        // Asynchronous detection: the same stream applied on a dedicated
        // detector thread behind the batch ring. Small batches and a
        // shallow ring so backpressure actually fires at Test scale.
        VmOptions AsyncOpts;
        AsyncOpts.Seed = Seed;
        AsyncOpts.EnableGroundTruth = true;
        AsyncOpts.AsyncDetect = true;
        AsyncOpts.EventBatch = 64;
        AsyncOpts.AsyncRingBatches = 4;
        VmResult Async = runProgram(*IP.Prog, IP.Tool, AsyncOpts);
        expectSameRun(Tag + " inline-vs-async", Inline, Async);

        // Sharded detection (DESIGN.md Sec. 12): the same stream fanned
        // out to location-partitioned detector workers, merged back.
        // Two shards at Test scale exercises routing, broadcast, and
        // the merge on every cell of the grid.
        VmOptions ShardOpts;
        ShardOpts.Seed = Seed;
        ShardOpts.EnableGroundTruth = true;
        ShardOpts.DetectShards = 2;
        ShardOpts.EventBatch = 64;
        ShardOpts.AsyncRingBatches = 4;
        VmResult Sharded = runProgram(*IP.Prog, IP.Tool, ShardOpts);
        expectSameRun(Tag + " inline-vs-sharded2", Inline, Sharded);
        EXPECT_EQ(Sharded.ShardOrderViolations, 0u) << Tag;
        // Split-state mode (the default, DESIGN.md Sec. 13): sync edges
        // apply once to the shared SyncClockTable, so nothing fans out —
        // each lane sees one horizon marker per broadcast event instead
        // of a replayed copy.
        EXPECT_EQ(Sharded.ShardBroadcastCopies, 0u) << Tag;
        EXPECT_EQ(Sharded.ShardHorizonAdvances,
                  Sharded.ShardBroadcastEvents * 2)
            << Tag;

        // The legacy broadcast fan-out (PR 9) must stay byte-identical
        // too, with its events x shards copy accounting.
        VmOptions BcastOpts = ShardOpts;
        BcastOpts.SyncTable = false;
        VmResult Bcast = runProgram(*IP.Prog, IP.Tool, BcastOpts);
        expectSameRun(Tag + " inline-vs-broadcast2", Inline, Bcast);
        EXPECT_EQ(Bcast.ShardOrderViolations, 0u) << Tag;
        EXPECT_EQ(Bcast.ShardBroadcastCopies, Bcast.ShardBroadcastEvents * 2)
            << Tag;
        EXPECT_EQ(Bcast.ShardHorizonAdvances, 0u) << Tag;

        // Offline replay of the recorded trace, batched...
        ReplayOptions RO;
        RO.EnableGroundTruth = true;
        TraceReader Reader;
        ASSERT_TRUE(
            Reader.open(Writer.buffer().data(), Writer.buffer().size()))
            << Tag << ": " << Reader.error();
        ReplayResult Rep = replayTrace(Reader, Reader.config(), RO);
        expectReplayMatches(Tag + " batched-vs-replay", Batched, Rep);

        // ...and per-event, which must agree with the batched replay.
        TraceReader PerEvent;
        ASSERT_TRUE(
            PerEvent.open(Writer.buffer().data(), Writer.buffer().size()))
            << Tag << ": " << PerEvent.error();
        RO.Batch = 1;
        ReplayResult Rep1 = replayTrace(PerEvent, PerEvent.config(), RO);
        EXPECT_EQ(Rep.Counters.all(), Rep1.Counters.all()) << Tag;
        EXPECT_EQ(Rep.ToolRacyLocations, Rep1.ToolRacyLocations) << Tag;
        EXPECT_EQ(Rep.EventsReplayed, Rep1.EventsReplayed) << Tag;

        // Sharded replay: the shard count is a replay knob like the
        // filter, and any count must replay the trace byte-identically.
        TraceReader ShardReader;
        ASSERT_TRUE(ShardReader.open(Writer.buffer().data(),
                                     Writer.buffer().size()))
            << Tag << ": " << ShardReader.error();
        ReplayOptions ShardRO;
        ShardRO.EnableGroundTruth = true;
        ShardRO.DetectShards = 3;
        ReplayResult RepSharded =
            replayTrace(ShardReader, ShardReader.config(), ShardRO);
        expectReplayMatches(Tag + " batched-vs-sharded-replay", Batched,
                            RepSharded);
        EXPECT_EQ(RepSharded.ShardOrderViolations, 0u) << Tag;
      }
    }
  }
}

// The check-filter leg of the differential grid: with the filter
// disabled the detector runs every check through the full state machine,
// and the result — counters included — must be byte-identical to the
// default filtered run, online and via replay of the same trace. Same
// grid as above: every workload × all six configs × three seeds.
TEST(EventStreamEquivalence, CheckFilterOnOffAgreeEverywhere) {
  std::vector<Workload> Suite = standardSuite(SuiteScale::Test);
  for (Workload &W : racyVariants())
    Suite.push_back(std::move(W));
  for (const Workload &W : Suite) {
    ParseResult PR = parseProgram(W.Source);
    ASSERT_TRUE(PR.ok()) << W.Name << ": " << PR.Error;
    PR.Prog->internSymbols();
    std::vector<InstrumentedProgram> Configs = allSixConfigs(*PR.Prog);
    for (const InstrumentedProgram &IP : Configs) {
      for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
        std::string Tag = W.Name + "/" + IP.Tool.Name + "/seed" +
                          std::to_string(Seed) + "/filter";

        VmOptions Opts;
        Opts.Seed = Seed;
        Opts.EnableGroundTruth = true;
        IP.Prog->internSymbols();
        TraceWriter Writer(IP.Prog->symbols(), IP.Tool);
        Opts.RecordSink = &Writer;
        VmResult On = runProgram(*IP.Prog, IP.Tool, Opts);
        Writer.finish(summaryOf(On));
        EXPECT_TRUE(On.FilterEnabled) << Tag;

        Opts.RecordSink = nullptr;
        Opts.CheckFilter = false;
        VmResult Off = runProgram(*IP.Prog, IP.Tool, Opts);
        EXPECT_FALSE(Off.FilterEnabled) << Tag;
        EXPECT_EQ(Off.Filter.hits() + Off.Filter.misses(), 0u) << Tag;
        expectSameRun(Tag + " on-vs-off", On, Off);

        // Replay the filtered recording with the filter off: still
        // byte-identical (the knob is a replay option, not a trace
        // property).
        ReplayOptions RO;
        RO.EnableGroundTruth = true;
        RO.CheckFilter = false;
        TraceReader Reader;
        ASSERT_TRUE(
            Reader.open(Writer.buffer().data(), Writer.buffer().size()))
            << Tag << ": " << Reader.error();
        ReplayResult RepOff = replayTrace(Reader, Reader.config(), RO);
        expectReplayMatches(Tag + " on-vs-replay-off", On, RepOff);

        // And a filtered replay's effectiveness tallies are a pure
        // function of the event stream: they match the online run's.
        RO.CheckFilter = true;
        TraceReader Again;
        ASSERT_TRUE(
            Again.open(Writer.buffer().data(), Writer.buffer().size()))
            << Tag << ": " << Again.error();
        ReplayResult RepOn = replayTrace(Again, Again.config(), RO);
        expectReplayMatches(Tag + " on-vs-replay-on", On, RepOn);
        EXPECT_EQ(On.Filter.hits(), RepOn.Filter.hits()) << Tag;
        EXPECT_EQ(On.Filter.misses(), RepOn.Filter.misses()) << Tag;
        EXPECT_EQ(On.Filter.Invalidations, RepOn.Filter.Invalidations)
            << Tag;
      }
    }
  }
}

// Deterministic race-report merging: seeded racy workloads put races on
// locations that hash to different shards, and every shard count —
// including repeated runs of the same count — must produce reports and
// counters byte-identical to the synchronous path. The deferred-array
// configs matter most here: their races surface while a broadcast sync
// edge commits footprints in several shards at once, which is exactly
// the cross-shard ordering the RaceOrder merge keys exist for.
TEST(EventStreamEquivalence, ShardedMergeDeterministicAcrossShardCounts) {
  const size_t ShardCounts[] = {1, 2, 4, 8};
  for (const Workload &W : racyVariants()) {
    ParseResult PR = parseProgram(W.Source);
    ASSERT_TRUE(PR.ok()) << W.Name << ": " << PR.Error;
    PR.Prog->internSymbols();
    for (const InstrumentedProgram &IP : allSixConfigs(*PR.Prog)) {
      std::string Tag = W.Name + "/" + IP.Tool.Name + "/sharded-merge";

      VmOptions Opts;
      Opts.Seed = 2;
      Opts.EnableGroundTruth = true;
      VmResult Sync = runProgram(*IP.Prog, IP.Tool, Opts); // Shards = 0.

      for (size_t Shards : ShardCounts) {
        VmOptions SO = Opts;
        SO.DetectShards = Shards;
        SO.EventBatch = 32;   // Small batches: publication churn.
        SO.AsyncRingBatches = 2; // Shallow rings: backpressure fires.
        VmResult A = runProgram(*IP.Prog, IP.Tool, SO);
        expectSameRun(Tag + " sync-vs-shards" + std::to_string(Shards),
                      Sync, A);
        // The merged filter line is part of the CLI report the byte-diff
        // smokes compare: hit/miss/extend tallies partition across the
        // lanes (routed checks) and invalidations are broadcast-driven
        // (every lane equals sync), so all must reproduce exactly.
        EXPECT_EQ(A.Filter.hits(), Sync.Filter.hits()) << Tag;
        EXPECT_EQ(A.Filter.misses(), Sync.Filter.misses()) << Tag;
        EXPECT_EQ(A.Filter.Invalidations, Sync.Filter.Invalidations) << Tag;
        EXPECT_EQ(A.Filter.RangeExtends, Sync.Filter.RangeExtends) << Tag;
        EXPECT_EQ(A.ShardOrderViolations, 0u) << Tag;
        // Split-state default: zero broadcast copies, one horizon marker
        // per lane per broadcast event, and lane event tallies are
        // exactly the routed partition.
        EXPECT_EQ(A.ShardBroadcastCopies, 0u) << Tag;
        EXPECT_EQ(A.ShardHorizonAdvances, A.ShardBroadcastEvents * Shards)
            << Tag;
        EXPECT_EQ(A.ShardLanes.size(), Shards) << Tag;
        uint64_t LaneEvents = 0, LaneMarkers = 0;
        for (const ShardLaneStats &L : A.ShardLanes) {
          LaneEvents += L.Events;
          LaneMarkers += L.Markers;
        }
        EXPECT_EQ(LaneEvents, A.ShardRoutedEvents) << Tag;
        EXPECT_EQ(LaneMarkers, A.ShardHorizonAdvances) << Tag;

        // Run-to-run determinism at the same count: the merge may not
        // depend on worker scheduling.
        VmResult B = runProgram(*IP.Prog, IP.Tool, SO);
        expectSameRun(Tag + " rerun-shards" + std::to_string(Shards), A, B);

        // The legacy broadcast path stays wired and byte-identical, with
        // the PR 9 events x shards copy accounting.
        VmOptions LO = SO;
        LO.SyncTable = false;
        VmResult C = runProgram(*IP.Prog, IP.Tool, LO);
        expectSameRun(Tag + " broadcast-shards" + std::to_string(Shards),
                      Sync, C);
        EXPECT_EQ(C.ShardOrderViolations, 0u) << Tag;
        EXPECT_EQ(C.ShardBroadcastCopies, C.ShardBroadcastEvents * Shards)
            << Tag;
        EXPECT_EQ(C.ShardHorizonAdvances, 0u) << Tag;
        uint64_t BcastLaneEvents = 0;
        for (const ShardLaneStats &L : C.ShardLanes)
          BcastLaneEvents += L.Events;
        EXPECT_EQ(BcastLaneEvents,
                  C.ShardRoutedEvents + C.ShardBroadcastCopies)
            << Tag;
      }
    }
  }
}

// Lock-heavy leg of the differential grid: a synthetic lock-churn
// program where sync edges outnumber checks by design — three workers
// ping-ponging over two locks and a volatile flag between barrier
// phases. This is the workload shape the split-state table exists for
// (PR 9 broadcast amplification was worst here), so every dispatch mode
// and both sync-state modes must agree byte-for-byte, and the marker
// path must carry essentially all of the traffic.
TEST(EventStreamEquivalence, LockChurnAgreesAcrossModesAndSyncState) {
  const char *Source = R"(
class Shared {
  fields a, b;
  volatile fields turn;
}
class Churn {
  fields sum;
  method spin(sh, la, lb, bar, rounds, id) {
    total = 0;
    r = 0;
    while (r < rounds) {
      acq(la);
      x = sh.a;
      sh.a = x + id;
      rel(la);
      acq(lb);
      y = sh.b;
      sh.b = y + x;
      rel(lb);
      sh.turn = r * 3 + id;
      t = sh.turn;
      total = total + t;
      await bar;
      r = r + 1;
    }
    this.sum = total;
  }
}
thread {
  sh = new Shared;
  la = new Shared;
  lb = new Shared;
  bar = new_barrier(3);
  c1 = new Churn;
  c2 = new Churn;
  c3 = new Churn;
  rounds = 12;
  fork t1 = c1.spin(sh, la, lb, bar, rounds, 1);
  fork t2 = c2.spin(sh, la, lb, bar, rounds, 2);
  fork t3 = c3.spin(sh, la, lb, bar, rounds, 3);
  join t1;
  join t2;
  join t3;
  s = c1.sum;
  assert s > 0;
}
)";
  ParseResult PR = parseProgram(Source);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  PR.Prog->internSymbols();
  for (const InstrumentedProgram &IP : allSixConfigs(*PR.Prog)) {
    for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
      std::string Tag =
          "lock_churn/" + IP.Tool.Name + "/seed" + std::to_string(Seed);

      VmOptions Opts;
      Opts.Seed = Seed;
      Opts.EnableGroundTruth = true;
      Opts.EventBatch = 1;
      VmResult Inline = runProgram(*IP.Prog, IP.Tool, Opts);

      VmOptions AsyncOpts;
      AsyncOpts.Seed = Seed;
      AsyncOpts.EnableGroundTruth = true;
      AsyncOpts.AsyncDetect = true;
      AsyncOpts.EventBatch = 32;
      AsyncOpts.AsyncRingBatches = 4;
      VmResult Async = runProgram(*IP.Prog, IP.Tool, AsyncOpts);
      expectSameRun(Tag + " inline-vs-async", Inline, Async);

      for (size_t Shards : {size_t(2), size_t(4)}) {
        VmOptions SO;
        SO.Seed = Seed;
        SO.EnableGroundTruth = true;
        SO.DetectShards = Shards;
        SO.EventBatch = 32;
        SO.AsyncRingBatches = 2;
        VmResult Sharded = runProgram(*IP.Prog, IP.Tool, SO);
        std::string STag = Tag + "/shards" + std::to_string(Shards);
        expectSameRun(STag + " inline-vs-sharded", Inline, Sharded);
        EXPECT_EQ(Sharded.ShardOrderViolations, 0u) << STag;
        EXPECT_EQ(Sharded.ShardBroadcastCopies, 0u) << STag;
        EXPECT_EQ(Sharded.ShardHorizonAdvances,
                  Sharded.ShardBroadcastEvents * Shards)
            << STag;
        // Lock churn means the stream is mostly sync edges: the marker
        // path must actually be exercised, heavily.
        EXPECT_GT(Sharded.ShardBroadcastEvents, Sharded.ShardRoutedEvents / 4)
            << STag;
        EXPECT_GT(Sharded.ShardSyncPublishes, 0u) << STag;
        EXPECT_GT(Sharded.ShardSyncTableBytes, 0u) << STag;

        VmOptions LO = SO;
        LO.SyncTable = false;
        VmResult Bcast = runProgram(*IP.Prog, IP.Tool, LO);
        expectSameRun(STag + " inline-vs-broadcast", Inline, Bcast);
        EXPECT_EQ(Bcast.ShardBroadcastCopies,
                  Bcast.ShardBroadcastEvents * Shards)
            << STag;
      }
    }
  }
}

// A recording run with no detector attached (how the harness records: the
// placement's checks still execute, only consumption is deferred) must
// produce a trace whose replay matches the detector-attached execution.
TEST(EventStreamEquivalence, DetectorFreeRecordingReplaysIdentically) {
  std::vector<Workload> Suite = standardSuite(SuiteScale::Test);
  for (Workload &W : racyVariants())
    Suite.push_back(std::move(W));
  for (const Workload &W : Suite) {
    ParseResult PR = parseProgram(W.Source);
    ASSERT_TRUE(PR.ok()) << W.Name << ": " << PR.Error;
    PR.Prog->internSymbols();
    InstrumentedProgram IP = instrumentBigFoot(*PR.Prog);
    std::string Tag = W.Name + "/bigfoot-record-only";

    VmOptions Opts;
    Opts.Seed = 1;
    VmResult Online = runProgram(*IP.Prog, IP.Tool, Opts);

    IP.Prog->internSymbols();
    TraceWriter Writer(IP.Prog->symbols(), IP.Tool);
    Opts.RecordSink = &Writer;
    VmResult Recorded = runProgramBase(*IP.Prog, Opts);
    Writer.finish(summaryOf(Recorded));

    // The recording run executes the same placed checks, so everything
    // except the detector-owned counters already matches.
    EXPECT_EQ(Online.Ok, Recorded.Ok) << Tag;
    EXPECT_EQ(Online.Output, Recorded.Output) << Tag;
    EXPECT_EQ(Online.StatementsExecuted, Recorded.StatementsExecuted) << Tag;

    ReplayResult Rep = replayTraceFile("/nonexistent");
    EXPECT_FALSE(Rep.Ok); // Sanity: bad path surfaces as a failed result.

    TraceReader Reader;
    ASSERT_TRUE(Reader.open(Writer.buffer().data(), Writer.buffer().size()))
        << Tag << ": " << Reader.error();
    ReplayResult Replayed = replayTrace(Reader, Reader.config());
    EXPECT_EQ(Online.Ok, Replayed.Ok) << Tag;
    EXPECT_EQ(Online.Output, Replayed.Output) << Tag;
    EXPECT_EQ(Online.StatementsExecuted, Replayed.StatementsExecuted) << Tag;
    EXPECT_EQ(Online.Counters.all(), Replayed.Counters.all()) << Tag;
    EXPECT_EQ(Online.ToolRacyLocations, Replayed.ToolRacyLocations) << Tag;
    ASSERT_EQ(Online.ToolRaces.size(), Replayed.ToolRaces.size()) << Tag;
    for (size_t I = 0; I < Online.ToolRaces.size(); ++I)
      EXPECT_EQ(Online.ToolRaces[I].str(), Replayed.ToolRaces[I].str())
          << Tag << " race " << I;
  }
}

} // namespace
