//===- ConstraintSystemTest.cpp - Entailment engine tests -------------------===//
//
// Part of the BigFoot reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "entail/ConstraintSystem.h"

#include <gtest/gtest.h>

using namespace bigfoot;

namespace {
AffineExpr v(const char *Name) { return AffineExpr::variable(Name); }
AffineExpr c(int64_t Value) { return AffineExpr::constant(Value); }
} // namespace

TEST(ConstraintSystem, ProvesTautologies) {
  ConstraintSystem CS;
  EXPECT_TRUE(CS.proveLe(c(1), c(2)));
  EXPECT_TRUE(CS.proveEq(v("i"), v("i")));
  EXPECT_FALSE(CS.proveLe(c(2), c(1)));
  EXPECT_FALSE(CS.proveEq(v("i"), v("j")));
}

TEST(ConstraintSystem, EqualityPropagates) {
  // The paper's example: {z[i] accessed, i = j} |- z[j] accessed needs
  // i == j.
  ConstraintSystem CS;
  CS.addEquality(v("i"), v("j"));
  EXPECT_TRUE(CS.proveEq(v("i"), v("j")));
  EXPECT_TRUE(CS.proveEq(v("i") + 3, v("j") + 3));
  EXPECT_FALSE(CS.proveEq(v("i"), v("j") + 1));
}

TEST(ConstraintSystem, EqualityChains) {
  ConstraintSystem CS;
  CS.addEquality(v("a"), v("b"));
  CS.addEquality(v("b"), v("c"));
  EXPECT_TRUE(CS.equivVars("a", "c"));
}

TEST(ConstraintSystem, OffsetEqualities) {
  // The loop back-edge fact i = i' + 1 (Figure 6b).
  ConstraintSystem CS;
  CS.addEquality(v("i"), v("i'") + 1);
  EXPECT_TRUE(CS.proveEq(v("i") - 1, v("i'")));
  EXPECT_TRUE(CS.proveLe(v("i'"), v("i")));
  EXPECT_TRUE(CS.proveLt(v("i'"), v("i")));
  EXPECT_FALSE(CS.proveLe(v("i"), v("i'")));
}

TEST(ConstraintSystem, TransitiveBounds) {
  ConstraintSystem CS;
  CS.addLe(v("i"), v("j"));
  CS.addLe(v("j"), v("k"));
  EXPECT_TRUE(CS.proveLe(v("i"), v("k")));
  EXPECT_FALSE(CS.proveLe(v("k"), v("i")));
}

TEST(ConstraintSystem, StrictBoundArithmetic) {
  ConstraintSystem CS;
  CS.addLt(v("i"), v("n"));
  EXPECT_TRUE(CS.proveLe(v("i") + 1, v("n")));
  EXPECT_TRUE(CS.proveLt(v("i") - 2, v("n")));
}

TEST(ConstraintSystem, CombinesScaledFacts) {
  ConstraintSystem CS;
  CS.addLe(v("x") * 2, v("y"));
  CS.addLe(v("y"), c(10));
  EXPECT_TRUE(CS.proveLe(v("x"), c(5)));
}

TEST(ConstraintSystem, DetectsInconsistency) {
  ConstraintSystem CS;
  CS.addLt(v("i"), c(0));
  CS.addLe(c(0), v("i"));
  EXPECT_TRUE(CS.inconsistent());
}

TEST(ConstraintSystem, ConsistentSystemNotFlagged) {
  ConstraintSystem CS;
  CS.addLe(c(0), v("i"));
  CS.addLt(v("i"), v("n"));
  EXPECT_FALSE(CS.inconsistent());
}

TEST(ConstraintSystem, FieldAliasCongruence) {
  // x = a.f, y = a.f  |-  x = y (Section 5's alias-expression example).
  ConstraintSystem CS;
  CS.addFieldAlias("x", "a", "f");
  CS.addFieldAlias("y", "a", "f");
  EXPECT_TRUE(CS.equivVars("x", "y"));
  EXPECT_FALSE(CS.equivVars("x", "a"));
}

TEST(ConstraintSystem, FieldAliasDifferentFieldsDistinct) {
  ConstraintSystem CS;
  CS.addFieldAlias("x", "a", "f");
  CS.addFieldAlias("y", "a", "g");
  EXPECT_FALSE(CS.equivVars("x", "y"));
}

TEST(ConstraintSystem, AliasThroughEqualBases) {
  // a = b, x = a.f, y = b.f  |-  x = y (needs congruence).
  ConstraintSystem CS;
  CS.addEquality(v("a"), v("b"));
  CS.addFieldAlias("x", "a", "f");
  CS.addFieldAlias("y", "b", "f");
  EXPECT_TRUE(CS.equivVars("x", "y"));
}

TEST(ConstraintSystem, NestedAliasCongruence) {
  // x = a.f, y = a.f, s = x.g, t = y.g  |-  s = t (two-level chain, the
  // extended-path case RedCard and StaticBF track).
  ConstraintSystem CS;
  CS.addFieldAlias("x", "a", "f");
  CS.addFieldAlias("y", "a", "f");
  CS.addFieldAlias("s", "x", "g");
  CS.addFieldAlias("t", "y", "g");
  EXPECT_TRUE(CS.equivVars("s", "t"));
}

TEST(ConstraintSystem, ArrayAliasCongruence) {
  ConstraintSystem CS;
  CS.addArrayAlias("x", "arr", v("i"));
  CS.addArrayAlias("y", "arr", v("j"));
  EXPECT_FALSE(CS.equivVars("x", "y"));
  CS.addEquality(v("i"), v("j"));
  EXPECT_TRUE(CS.equivVars("x", "y"));
}

TEST(ConstraintSystem, DisequalityFromConstants) {
  ConstraintSystem CS;
  CS.addEquality(v("i"), c(3));
  CS.addEquality(v("j"), c(5));
  EXPECT_TRUE(CS.proveNe(v("i"), v("j")));
  EXPECT_FALSE(CS.proveEq(v("i"), v("j")));
}

TEST(ConstraintSystem, DisequalityFromRecordedFact) {
  ConstraintSystem CS;
  CS.addNe(v("i"), v("j"));
  EXPECT_TRUE(CS.proveNe(v("i"), v("j")));
  EXPECT_TRUE(CS.proveNe(v("j"), v("i")));
  EXPECT_FALSE(CS.proveNe(v("i"), v("k")));
}

TEST(ConstraintSystem, RangeSubsetBasicBounds) {
  // {i < n, 0 <= i}: [0..i] subset of [0..n].
  ConstraintSystem CS;
  CS.addLt(v("i"), v("n"));
  CS.addLe(c(0), v("i"));
  SymbolicRange Sub(c(0), v("i"));
  SymbolicRange Sup(c(0), v("n"));
  EXPECT_TRUE(CS.proveRangeSubset(Sub, Sup));
  EXPECT_FALSE(CS.proveRangeSubset(Sup, Sub));
}

TEST(ConstraintSystem, RangeSubsetPaperAnticipation) {
  // {i < 10} • {x[0..10]} |- x[0..i] (Section 3.4's example).
  ConstraintSystem CS;
  CS.addLt(v("i"), c(10));
  EXPECT_TRUE(
      CS.proveRangeSubset(SymbolicRange(c(0), v("i")),
                          SymbolicRange(c(0), c(10))));
}

TEST(ConstraintSystem, RangeSubsetEmptySubAlwaysHolds) {
  ConstraintSystem CS;
  CS.addEquality(v("i"), c(0));
  // [i..i) is empty, subset of anything, even a disjoint range.
  EXPECT_TRUE(CS.proveRangeSubset(SymbolicRange(v("i"), v("i")),
                                  SymbolicRange(c(100), c(200))));
}

TEST(ConstraintSystem, RangeSubsetStrideDivisibility) {
  ConstraintSystem CS;
  // Stride 4 range within stride 2 range: OK when aligned.
  EXPECT_TRUE(CS.proveRangeSubset(SymbolicRange(c(0), c(100), 4),
                                  SymbolicRange(c(0), c(100), 2)));
  // Stride 2 within stride 4: not a subset.
  EXPECT_FALSE(CS.proveRangeSubset(SymbolicRange(c(0), c(100), 2),
                                   SymbolicRange(c(0), c(100), 4)));
  // Misaligned same-stride: offset 1 not divisible by 2.
  EXPECT_FALSE(CS.proveRangeSubset(SymbolicRange(c(1), c(100), 2),
                                   SymbolicRange(c(0), c(100), 2)));
  // Aligned offset: offset 4 divisible by 2.
  EXPECT_TRUE(CS.proveRangeSubset(SymbolicRange(c(4), c(50), 2),
                                  SymbolicRange(c(0), c(100), 2)));
}

TEST(ConstraintSystem, RangeSubsetSymbolicStride1) {
  ConstraintSystem CS;
  CS.addLe(v("lo2"), v("lo1"));
  CS.addLe(v("hi1"), v("hi2"));
  EXPECT_TRUE(CS.proveRangeSubset(SymbolicRange(v("lo1"), v("hi1")),
                                  SymbolicRange(v("lo2"), v("hi2"))));
}

TEST(ConstraintSystem, UnprovableWithoutFacts) {
  ConstraintSystem CS;
  EXPECT_FALSE(CS.proveRangeSubset(SymbolicRange(c(0), v("i")),
                                   SymbolicRange(c(0), v("n"))));
  EXPECT_FALSE(CS.proveLe(v("i"), v("n")));
}

TEST(ConstraintSystem, LoopInvariantEntailmentScenario) {
  // The Figure 6(b) situation after the back edge: facts
  // {i = i' + 1}; query: [0..i) subset of [0..i') union [i'..i'+1).
  // The union piece is exercised at the history level; here we verify the
  // two bound queries the history layer issues.
  ConstraintSystem CS;
  CS.addEquality(v("i"), v("i'") + 1);
  // Chain condition: second range starts exactly where the first ends.
  EXPECT_TRUE(CS.proveLe(v("i'"), v("i'")));
  // Final bound: i <= i' + 1.
  EXPECT_TRUE(CS.proveLe(v("i"), v("i'") + 1));
}

TEST(ConstraintSystem, ScalesToManyFacts) {
  ConstraintSystem CS;
  for (int I = 0; I < 60; ++I)
    CS.addLe(v(("x" + std::to_string(I)).c_str()),
             v(("x" + std::to_string(I + 1)).c_str()));
  EXPECT_TRUE(CS.proveLe(v("x0"), v("x60")));
  EXPECT_FALSE(CS.proveLe(v("x60"), v("x0")));
}
