//===- InstrumentersTest.cpp - Placement-strategy unit tests -----------------===//
//
// Part of the BigFoot reproduction. See README.md for details.
//
//===----------------------------------------------------------------------===//

#include "instrument/Instrumenters.h"

#include "bfj/Parser.h"
#include "bfj/Printer.h"

#include <gtest/gtest.h>

using namespace bigfoot;

namespace {

size_t checkCount(const Program &P) {
  size_t N = 0;
  P.forEachStmt([&N](const Stmt *S) {
    if (const auto *C = dyn_cast<CheckStmt>(S))
      N += C->paths().size();
  });
  return N;
}

size_t accessCount(const Program &P) {
  size_t N = 0;
  P.forEachStmt([&N](const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::FieldRead:
    case StmtKind::FieldWrite:
    case StmtKind::ArrayRead:
    case StmtKind::ArrayWrite:
      ++N;
      break;
    default:
      break;
    }
  });
  return N;
}

} // namespace

TEST(FastTrackPlacement, OneCheckPerAccess) {
  auto Prog = parseProgramOrDie(R"(
class C { fields f, g; }
thread {
  o = new C;
  a = new_array(4);
  o.f = 1;
  t = o.g;
  a[0] = 2;
  u = a[1];
}
)");
  InstrumentedProgram Ft = instrumentFastTrack(*Prog);
  EXPECT_EQ(checkCount(*Ft.Prog), accessCount(*Ft.Prog));
  EXPECT_EQ(checkCount(*Ft.Prog), 4u);
}

TEST(FastTrackPlacement, VolatileAccessesNotChecked) {
  auto Prog = parseProgramOrDie(R"(
class C {
  fields d;
  volatile fields v;
}
thread {
  o = new C;
  o.v = 1;
  o.d = 2;
}
)");
  InstrumentedProgram Ft = instrumentFastTrack(*Prog);
  EXPECT_EQ(checkCount(*Ft.Prog), 1u) << printProgram(*Ft.Prog);
}

TEST(RedCardPlacement, EliminatesRereadInSpan) {
  // Second read of the same location within a release-free span is
  // redundant (the paper's core RedCard observation).
  auto Prog = parseProgramOrDie(R"(
class C { fields f; }
thread {
  o = new C;
  t = o.f;
  u = o.f;
}
)");
  InstrumentedProgram Rc = instrumentRedCard(*Prog);
  EXPECT_EQ(checkCount(*Rc.Prog), 1u) << printProgram(*Rc.Prog);
}

TEST(RedCardPlacement, WriteAfterReadStillChecked) {
  // A read check does not cover a later write.
  auto Prog = parseProgramOrDie(R"(
class C { fields f; }
thread {
  o = new C;
  t = o.f;
  o.f = t + 1;
  u = o.f;
}
)");
  InstrumentedProgram Rc = instrumentRedCard(*Prog);
  // Read check + write check; the final read is covered by the write
  // check.
  EXPECT_EQ(checkCount(*Rc.Prog), 2u) << printProgram(*Rc.Prog);
}

TEST(RedCardPlacement, ReleaseEndsTheSpan) {
  auto Prog = parseProgramOrDie(R"(
class C { fields f; }
thread {
  o = new C;
  lock = new C;
  t = o.f;
  acq(lock);
  rel(lock);
  u = o.f;
}
)");
  InstrumentedProgram Rc = instrumentRedCard(*Prog);
  EXPECT_EQ(checkCount(*Rc.Prog), 2u) << printProgram(*Rc.Prog);
}

TEST(RedCardPlacement, AcquireAloneDoesNotEndCoverage) {
  // A check covers later accesses until a RELEASE; an acquire between
  // them is fine ("check precedes the access with no intervening
  // release").
  auto Prog = parseProgramOrDie(R"(
class C { fields f; }
thread {
  o = new C;
  lock = new C;
  t = o.f;
  acq(lock);
  u = o.f;
  rel(lock);
}
)");
  InstrumentedProgram Rc = instrumentRedCard(*Prog);
  EXPECT_EQ(checkCount(*Rc.Prog), 1u) << printProgram(*Rc.Prog);
}

TEST(RedCardPlacement, RedundancyAcrossLoopIterations) {
  // The loop-invariant re-read of o.f is checked once before/inside the
  // first iteration and recognized as covered on later ones.
  auto Prog = parseProgramOrDie(R"(
class C { fields f; }
thread {
  o = new C;
  i = 0;
  s = 0;
  while (i < 10) {
    t = o.f;
    s = s + t;
    i = i + 1;
  }
}
)");
  InstrumentedProgram Rc = instrumentRedCard(*Prog);
  EXPECT_EQ(checkCount(*Rc.Prog), 1u) << printProgram(*Rc.Prog);
}

TEST(RedCardPlacement, AliasedRereadEliminated) {
  auto Prog = parseProgramOrDie(R"(
class C { fields f, g; }
thread {
  a = new C;
  x = a.f;
  s = x.g;
  y = a.f;
  t = y.g;
}
)");
  InstrumentedProgram Rc = instrumentRedCard(*Prog);
  // Checks: a.f once, x.g once; y.g covered through x = y.
  EXPECT_EQ(checkCount(*Rc.Prog), 2u) << printProgram(*Rc.Prog);
}

TEST(Placement, ToolConfigsMatchStrategies) {
  auto Prog = parseProgramOrDie(R"(
class C { fields f; }
thread { o = new C; o.f = 1; }
)");
  EXPECT_FALSE(instrumentFastTrack(*Prog).Tool.DeferArrayChecks);
  EXPECT_FALSE(instrumentFastTrack(*Prog).Tool.AdaptiveArrayShadow);
  EXPECT_TRUE(instrumentSlimState(*Prog).Tool.DeferArrayChecks);
  EXPECT_TRUE(instrumentSlimCard(*Prog).Tool.AdaptiveArrayShadow);
  EXPECT_TRUE(instrumentBigFoot(*Prog).Tool.DeferArrayChecks);
  EXPECT_EQ(instrumentRedCard(*Prog).Tool.Name, "redcard");
}

TEST(Placement, BigFootNeverChecksMoreThanRedCard) {
  // On every suite-shaped body BigFoot's path count is at most
  // RedCard's (it eliminates strictly more and coalesces).
  const char *Source = R"(
class C { fields f, g; }
thread {
  o = new C;
  n = 16;
  a = new_array(n);
  i = 0;
  while (i < n) {
    a[i] = i;
    t = o.f;
    o.g = t;
    i = i + 1;
  }
}
)";
  auto Prog = parseProgramOrDie(Source);
  size_t Rc = checkCount(*instrumentRedCard(*Prog).Prog);
  size_t Bf = checkCount(*instrumentBigFoot(*Prog).Prog);
  EXPECT_LE(Bf, Rc);
}
