//===- quickstart.cpp - BigFoot in five minutes -------------------------------===//
//
// Part of the BigFoot reproduction. See README.md for details.
//
// Walks the Figure 1 example end to end: parse a BFJ program, run the
// StaticBF check placement, show the placed (coalesced) checks next to
// what a per-access detector would insert, then execute both under their
// detectors and compare the work they did.
//
//===----------------------------------------------------------------------===//

#include "bfj/Parser.h"
#include "bfj/Printer.h"
#include "instrument/Instrumenters.h"
#include "vm/Vm.h"

#include <iostream>

using namespace bigfoot;

static const char *Figure1 = R"(
class Point {
  fields x, y, z;
  method move(dx, dy, dz) {
    tmp = this.x;
    this.x = tmp + dx;
    tmp2 = this.y;
    this.y = tmp2 + dy;
    tmp3 = this.z;
    this.z = tmp3 + dz;
  }
}
class Mover {
  fields dummy;
  method movePts(a, lo, hi) {
    i = lo;
    while (i < hi) {
      p = a[i];
      p.move(1, 1, 1);
      i = i + 1;
    }
  }
}
thread {
  n = 64;
  pts = new_array(n);
  i = 0;
  while (i < n) {
    pt = new Point;
    pts[i] = pt;
    i = i + 1;
  }
  m = new Mover;
  m.movePts(pts, 0, n);
}
)";

int main() {
  auto Prog = parseProgramOrDie(Figure1);

  std::cout << "=== Standard (FastTrack) check placement ===\n";
  InstrumentedProgram Ft = instrumentFastTrack(*Prog);
  std::cout << printProgram(*Ft.Prog) << "\n";

  std::cout << "=== BigFoot check placement ===\n";
  InstrumentedProgram Bf = instrumentBigFoot(*Prog);
  std::cout << printProgram(*Bf.Prog) << "\n";

  std::cout << "=== Running both under their detectors ===\n";
  VmOptions Opts;
  VmResult FtRun = runProgram(*Ft.Prog, Ft.Tool, Opts);
  VmResult BfRun = runProgram(*Bf.Prog, Bf.Tool, Opts);
  if (!FtRun.Ok || !BfRun.Ok) {
    std::cerr << "run failed: " << FtRun.Error << BfRun.Error << "\n";
    return 1;
  }
  auto Show = [](const char *Name, const VmResult &R) {
    uint64_t Events = R.Counters.get("tool.checkEvents.field") +
                      R.Counters.get("tool.checkEvents.array");
    uint64_t Accesses = R.Counters.get("vm.accesses");
    std::cout << Name << ": " << Accesses << " heap accesses, " << Events
              << " check events (ratio "
              << static_cast<double>(Events) / Accesses << "), "
              << R.Counters.get("tool.shadowOps") << " shadow ops, "
              << R.ToolRaces.size() << " races\n";
  };
  Show("FastTrack", FtRun);
  Show("BigFoot  ", BfRun);
  std::cout << "\nSame verdict (no races), a fraction of the checking "
               "work — that is the paper's\nFigure 1 in action.\n";
  return 0;
}
