//===- adaptive_shadow_demo.cpp - Watching shadow state adapt -----------------===//
//
// Part of the BigFoot reproduction. See README.md for details.
//
// Drives the Section 4 adaptive array shadow directly through the public
// runtime API and narrates its representation changes: coarse for
// whole-array checks, segments for the movePts(a, 0, n/2) refinement,
// residue classes for strided sweeps, and the fall back to fine-grained
// state for lufact-style triangular patterns.
//
//===----------------------------------------------------------------------===//

#include "runtime/ArrayShadow.h"

#include <iostream>

using namespace bigfoot;

namespace {

const char *modeName(ArrayShadow::Mode M) {
  switch (M) {
  case ArrayShadow::Mode::Coarse:
    return "coarse (1 location)";
  case ArrayShadow::Mode::Segments:
    return "segments";
  case ArrayShadow::Mode::Strided:
    return "residue classes";
  case ArrayShadow::Mode::Fine:
    return "fine-grained";
  }
  return "?";
}

void narrate(ArrayShadow &S, const StridedRange &R, AccessKind K,
             ThreadId T, const VectorClock &C) {
  ShadowOpResult Res = S.apply(R, K, T, C);
  std::cout << "  check " << (K == AccessKind::Read ? "R " : "W ")
            << R.str() << " -> " << Res.ShadowOps << " shadow op(s), "
            << Res.Refinements << " refinement(s); now " << modeName(S.mode())
            << " with " << S.locationCount() << " location(s)\n";
}

} // namespace

int main() {
  ClockPool Pool;
  VectorClock T0, T1;
  T0.set(0, 1);
  T1.set(1, 1);

  std::cout << "=== The paper's movePts scenario (Section 1) ===\n";
  ArrayShadow A(1000, /*Adaptive=*/true, Pool);
  std::cout << "new array of 1000: " << modeName(A.mode()) << "\n";
  narrate(A, StridedRange(0, 1000), AccessKind::Read, 0, T0);
  std::cout << "movePts(a, 0, a.length/2) refines the representation:\n";
  narrate(A, StridedRange(0, 500), AccessKind::Read, 0, T0);

  std::cout << "\n=== Strided sweeps keep one location per residue class "
               "===\n";
  ArrayShadow B(1024, true, Pool);
  narrate(B, StridedRange(0, 1024, 2), AccessKind::Write, 0, T0);
  narrate(B, StridedRange(1, 1024, 2), AccessKind::Write, 1, T1);
  std::cout << "  (two threads, disjoint residue classes, no races, two "
               "locations total)\n";

  std::cout << "\n=== Block-strided chunks (sor's red/black halves) stay "
               "on the grid ===\n";
  ArrayShadow G(12000, true, Pool);
  narrate(G, StridedRange(1, 6000, 2), AccessKind::Write, 0, T0);
  narrate(G, StridedRange(6001, 12000, 2), AccessKind::Write, 1, T1);
  narrate(G, StridedRange(2, 6000, 2), AccessKind::Write, 0, T0);
  narrate(G, StridedRange(6002, 12000, 2), AccessKind::Write, 1, T1);
  std::cout << "  (segments x residue classes: a handful of locations for "
               "12000 elements)\n";

  std::cout << "\n=== The lufact pattern defeats compression (Section 6.2) "
               "===\n";
  ArrayShadow Tri(2000, true, Pool);
  unsigned Ops = 0;
  for (int64_t Lo = 0; Lo < 600; ++Lo)
    Ops += Tri.apply(StridedRange(Lo, 2000), AccessKind::Write, 0, T0)
               .ShadowOps;
  std::cout << "  600 shrinking prefix checks -> " << modeName(Tri.mode())
            << " with " << Tri.locationCount() << " locations and " << Ops
            << " shadow ops total\n";

  std::cout << "\n=== Refinement never forgets history ===\n";
  ArrayShadow Hist(100, true, Pool);
  Hist.apply(StridedRange(0, 100), AccessKind::Write, 0, T0);
  ShadowOpResult Racy =
      Hist.apply(StridedRange(10, 20), AccessKind::Write, 1, T1);
  std::cout << "  T0 wrote [0..100) coarsely; T1 writes [10..20) without "
               "ordering ->\n  "
            << Racy.Races.size()
            << " race detected even though the location split ("
            << modeName(Hist.mode()) << ")\n";
  return Racy.Races.empty() ? 1 : 0;
}
