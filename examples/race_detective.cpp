//===- race_detective.cpp - Finding a real bug with BigFoot -------------------===//
//
// Part of the BigFoot reproduction. See README.md for details.
//
// A small "application" scenario: a work-sharing image filter whose
// first version forgets a barrier between the blur and sharpen phases.
// BigFoot (and every other detector) pinpoints the race; adding the
// barrier makes all of them go quiet. Demonstrates the user-facing API:
// instrument -> run -> inspect races.
//
//===----------------------------------------------------------------------===//

#include "bfj/Parser.h"
#include "instrument/Instrumenters.h"
#include "vm/Vm.h"

#include <iostream>

using namespace bigfoot;

namespace {

std::string pipeline(bool WithBarrier) {
  std::string Sync = WithBarrier ? "await bar;" : "skip;";
  return R"(
class Filter {
  fields dummy;
  method run(img, tmp, lo, hi, n, bar) {
    i = lo;
    while (i < hi) {
      left = i - 1;
      right = i + 1;
      if (left < 0) { left = 0; }
      if (right >= n) { right = n - 1; }
      a = img[left];
      b = img[i];
      c = img[right];
      tmp[i] = (a + b + c) / 3;
      i = i + 1;
    }
    )" + Sync + R"(
    i = lo;
    while (i < hi) {
      left = i - 1;
      right = i + 1;
      if (left < 0) { left = 0; }
      if (right >= n) { right = n - 1; }
      a = tmp[left];
      b = tmp[i];
      c = tmp[right];
      img[i] = 2 * b - (a + c) / 2;
      i = i + 1;
    }
  }
}
thread {
  n = 256;
  img = new_array(n);
  tmp = new_array(n);
  i = 0;
  while (i < n) {
    img[i] = (i * 31) % 200;
    i = i + 1;
  }
  bar = new_barrier(2);
  f1 = new Filter;
  f2 = new Filter;
  mid = n / 2;
  fork t1 = f1.run(img, tmp, 0, mid, n, bar);
  fork t2 = f2.run(img, tmp, mid, n, n, bar);
  join t1;
  join t2;
}
)";
}

int report(const char *Title, const std::string &Source) {
  std::cout << "=== " << Title << " ===\n";
  auto Prog = parseProgramOrDie(Source.c_str());
  int TotalRaces = 0;
  for (InstrumentedProgram &IP : instrumentAll(*Prog)) {
    VmOptions Opts;
    Opts.Seed = 7;
    VmResult Run = runProgram(*IP.Prog, IP.Tool, Opts);
    if (!Run.Ok) {
      std::cerr << IP.Tool.Name << " failed: " << Run.Error << "\n";
      return -1;
    }
    std::cout << "  " << IP.Tool.Name << ": " << Run.ToolRaces.size()
              << " race(s)";
    if (!Run.ToolRaces.empty())
      std::cout << " — e.g. " << Run.ToolRaces.front().str();
    std::cout << "\n";
    TotalRaces += static_cast<int>(Run.ToolRaces.size());
  }
  std::cout << "\n";
  return TotalRaces;
}

} // namespace

int main() {
  int Buggy = report("v1: blur/sharpen with NO barrier (buggy)",
                     pipeline(false));
  int Fixed = report("v2: with the barrier (fixed)", pipeline(true));
  if (Buggy <= 0 || Fixed != 0) {
    std::cerr << "unexpected detector results\n";
    return 1;
  }
  std::cout << "Every detector flags v1 (the halo reads cross the "
               "partition boundary before the\nother thread finished "
               "writing tmp) and certifies v2 clean.\n";
  return 0;
}
