//===- analysis_explorer.cpp - Figures 3 and 6 context traces -----------------===//
//
// Part of the BigFoot reproduction. See README.md for details.
//
// Reproduces the paper's analysis-context listings: for the Figure 3 lock
// fragment and the Figure 6(b) loop, prints each statement followed by
// the inferred context H • A, using the paper's ✁ (past access),
// ✓ (past check), and ✸ (anticipated access) markers.
//
//===----------------------------------------------------------------------===//

#include "analysis/CheckPlacement.h"
#include "bfj/Parser.h"
#include "bfj/Printer.h"

#include <iostream>

using namespace bigfoot;

namespace {

void explain(const char *Title, const char *Source) {
  std::cout << "=== " << Title << " ===\n";
  auto Prog = parseProgramOrDie(Source);
  PlacementOptions Opts;
  Opts.TraceContexts = true;
  PlacementStats Stats = placeBigFootChecks(*Prog, Opts);

  // Print each top-level statement of each body with its post-context.
  auto Dump = [&Stats](const Stmt *Body, int Depth) {
    auto Recurse = [&Stats](auto &&Self, const Stmt *S, int D) -> void {
      std::string Pad(static_cast<size_t>(D) * 2, ' ');
      switch (S->kind()) {
      case StmtKind::Block:
        for (const auto &Child : cast<BlockStmt>(S)->stmts())
          Self(Self, Child.get(), D);
        return;
      case StmtKind::If: {
        const auto *If = cast<IfStmt>(S);
        std::cout << Pad << "if (" << If->cond()->str() << ") {\n";
        Self(Self, If->thenStmt(), D + 1);
        std::cout << Pad << "} else {\n";
        Self(Self, If->elseStmt(), D + 1);
        std::cout << Pad << "}\n";
        return;
      }
      case StmtKind::Loop: {
        const auto *Loop = cast<LoopStmt>(S);
        std::cout << Pad << "loop {\n";
        Self(Self, Loop->preBody(), D + 1);
        std::cout << Pad << "  exit_if (" << Loop->exitCond()->str()
                  << ");\n";
        Self(Self, Loop->postBody(), D + 1);
        std::cout << Pad << "}\n";
        return;
      }
      default: {
        std::string Line = printStmt(S, 0);
        if (!Line.empty() && Line.back() == '\n')
          Line.pop_back();
        std::cout << Pad << Line;
        auto It = Stats.ContextAfter.find(S->id());
        if (It != Stats.ContextAfter.end())
          std::cout << "\n" << Pad << "    ⊢ " << It->second;
        std::cout << "\n";
        return;
      }
      }
    };
    Recurse(Recurse, Body, Depth);
  };

  for (const auto &C : Prog->Classes)
    for (const auto &M : C->Methods) {
      std::cout << "method " << C->Name << "." << M->Name << ":\n";
      Dump(M->Body.get(), 1);
    }
  for (const auto &T : Prog->Threads) {
    std::cout << "thread:\n";
    Dump(T.get(), 1);
  }
  std::cout << "\n";
}

} // namespace

int main() {
  // Figure 3: one check suffices for three accesses to b.f.
  explain("Figure 3: the lock fragment", R"(
class C { fields f; }
thread {
  b = new C;
  lock = new C;
  acq(lock);
  x = b.f;
  rel(lock);
  y = b.f;
  acq(lock);
  z = b.f;
  rel(lock);
}
)");

  // Figure 6(b): the loop whose array accesses accumulate into a[0..i].
  explain("Figure 6(b): the accumulating loop", R"(
class C { fields f; }
thread {
  b = new C;
  n = 100;
  a = new_array(n);
  i = 0;
  while (i < n) {
    t = b.f;
    a[i] = t;
    i = i + 1;
  }
  acq(b);
  rel(b);
}
)");

  std::cout << "Legend: p✁ past access, p✓ past check, p✸ anticipated "
               "access; a 'w' suffix marks\nwrites. Compare with Figures 3 "
               "and 6 of the paper.\n";
  return 0;
}
