//===- bigfoot.cpp - The bigfoot command-line driver --------------------------===//
//
// Part of the BigFoot reproduction. See README.md for details.
//
// The StaticBF + DynamicBF pipeline as a command-line tool:
//
//   bigfoot program.bfj                      # instrument + run + report
//   bigfoot --tool=fasttrack program.bfj     # pick a detector
//   bigfoot --print program.bfj              # show instrumented source
//   bigfoot --contexts program.bfj           # show analysis contexts
//   bigfoot --seed=N --quantum=N ...         # schedule control
//
//===----------------------------------------------------------------------===//

#include "analysis/CheckPlacement.h"
#include "bfj/Parser.h"
#include "bfj/Printer.h"
#include "instrument/Instrumenters.h"
#include "vm/Vm.h"

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace bigfoot;

namespace {

void usage() {
  std::cerr <<
      R"(usage: bigfoot [options] program.bfj

options:
  --tool=NAME     detector: bigfoot (default), fasttrack, redcard,
                  slimstate, slimcard, djit, none (base run)
  --print         print the instrumented program and exit
  --contexts      print per-statement analysis contexts (H • A) and exit
  --seed=N        scheduler seed (default 1)
  --quantum=N     max statements per scheduling quantum (default 24)
  --commit-interval=N
                  commit deferred footprints every N statements (the
                  Section 3.3 extension; 0 = only at synchronization)
  --oracle        also run the per-access ground-truth detector
  --stats         dump all counters after the run
)";
}

std::string readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "bigfoot: error: cannot open '" << Path << "'\n";
    std::exit(1);
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

int main(int Argc, char **Argv) {
  std::string ToolName = "bigfoot";
  bool PrintOnly = false, Contexts = false, Oracle = false, DumpStats = false;
  const char *File = nullptr;
  VmOptions VmOpts;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--tool=", 7) == 0)
      ToolName = Arg + 7;
    else if (std::strcmp(Arg, "--print") == 0)
      PrintOnly = true;
    else if (std::strcmp(Arg, "--contexts") == 0)
      Contexts = true;
    else if (std::strcmp(Arg, "--oracle") == 0)
      Oracle = true;
    else if (std::strcmp(Arg, "--stats") == 0)
      DumpStats = true;
    else if (std::strncmp(Arg, "--seed=", 7) == 0)
      VmOpts.Seed = static_cast<uint64_t>(std::atoll(Arg + 7));
    else if (std::strncmp(Arg, "--quantum=", 10) == 0)
      VmOpts.Quantum = static_cast<unsigned>(std::atoi(Arg + 10));
    else if (std::strncmp(Arg, "--commit-interval=", 18) == 0)
      VmOpts.CommitIntervalSteps =
          static_cast<uint64_t>(std::atoll(Arg + 18));
    else if (std::strcmp(Arg, "--help") == 0 || std::strcmp(Arg, "-h") == 0) {
      usage();
      return 0;
    } else if (Arg[0] == '-') {
      std::cerr << "bigfoot: error: unknown option '" << Arg << "'\n";
      usage();
      return 1;
    } else {
      File = Arg;
    }
  }
  if (!File) {
    usage();
    return 1;
  }

  ParseResult PR = parseProgram(readFile(File));
  if (!PR.ok()) {
    std::cerr << "bigfoot: " << File << ": " << PR.Error << "\n";
    return 1;
  }

  if (Contexts) {
    PlacementOptions Opts;
    Opts.TraceContexts = true;
    PlacementStats Stats = placeBigFootChecks(*PR.Prog, Opts);
    std::cout << printProgram(*PR.Prog);
    std::cout << "\n--- contexts after each statement ---\n";
    for (const auto &[Id, Ctx] : Stats.ContextAfter)
      std::cout << "#" << Id << ": " << Ctx << "\n";
    return 0;
  }

  if (ToolName == "none") {
    VmOpts.EnableGroundTruth = Oracle;
    VmResult Run = runProgramBase(*PR.Prog, VmOpts);
    for (const std::string &Line : Run.Output)
      std::cout << Line << "\n";
    if (!Run.Ok) {
      std::cerr << "bigfoot: runtime error: " << Run.Error << "\n";
      return 1;
    }
    return 0;
  }

  InstrumentedProgram IP;
  if (ToolName == "bigfoot")
    IP = instrumentBigFoot(*PR.Prog);
  else if (ToolName == "fasttrack")
    IP = instrumentFastTrack(*PR.Prog);
  else if (ToolName == "redcard")
    IP = instrumentRedCard(*PR.Prog);
  else if (ToolName == "slimstate")
    IP = instrumentSlimState(*PR.Prog);
  else if (ToolName == "slimcard")
    IP = instrumentSlimCard(*PR.Prog);
  else if (ToolName == "djit") {
    IP = instrumentFastTrack(*PR.Prog);
    IP.Tool = djitConfig();
  } else {
    std::cerr << "bigfoot: error: unknown tool '" << ToolName << "'\n";
    return 1;
  }

  if (PrintOnly) {
    std::cout << printProgram(*IP.Prog);
    return 0;
  }

  VmOpts.EnableGroundTruth = Oracle;
  VmResult Run = runProgram(*IP.Prog, IP.Tool, VmOpts);
  for (const std::string &Line : Run.Output)
    std::cout << Line << "\n";
  if (!Run.Ok) {
    std::cerr << "bigfoot: runtime error: " << Run.Error << "\n";
    return 1;
  }

  uint64_t Events = Run.Counters.get("tool.checkEvents.field") +
                    Run.Counters.get("tool.checkEvents.array");
  uint64_t Accesses = Run.Counters.get("vm.accesses");
  std::cerr << "[" << ToolName << "] " << Accesses << " accesses, "
            << Events << " check events ("
            << (Accesses ? static_cast<double>(Events) / Accesses : 0.0)
            << " ratio), " << Run.Counters.get("tool.shadowOps")
            << " shadow ops\n";
  if (Run.ToolRaces.empty()) {
    std::cerr << "[" << ToolName << "] no races detected\n";
  } else {
    for (const ReportedRace &R : Run.ToolRaces)
      std::cerr << "[" << ToolName << "] " << R.str() << "\n";
  }
  if (Oracle) {
    std::cerr << "[oracle] " << Run.GroundTruthRaces.size()
              << " race(s) at per-access granularity\n";
  }
  if (DumpStats)
    for (const auto &[Name, Value] : Run.Counters.all())
      std::cerr << "  " << Name << " = " << Value << "\n";
  return Run.ToolRaces.empty() ? 0 : 2;
}
