//===- bigfoot.cpp - The bigfoot command-line driver --------------------------===//
//
// Part of the BigFoot reproduction. See README.md for details.
//
// The StaticBF + DynamicBF pipeline as a command-line tool:
//
//   bigfoot program.bfj                      # instrument + run + report
//   bigfoot --tool=fasttrack program.bfj     # pick a detector
//   bigfoot --print program.bfj              # show instrumented source
//   bigfoot --contexts program.bfj           # show analysis contexts
//   bigfoot --seed=N --quantum=N ...         # schedule control
//   bigfoot trace record --out=t.bft p.bfj   # record the event stream
//   bigfoot trace replay t.bft               # re-analyze it offline
//   bigfoot trace info t.bft                 # describe a trace file
//
//===----------------------------------------------------------------------===//

#include "analysis/CheckPlacement.h"
#include "bfj/Parser.h"
#include "bfj/Printer.h"
#include "events/Replay.h"
#include "events/TraceCodec.h"
#include "instrument/Instrumenters.h"
#include "vm/Vm.h"

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace bigfoot;

namespace {

void usage() {
  std::cerr <<
      R"(usage: bigfoot [options] program.bfj

options:
  --tool=NAME     detector: bigfoot (default), fasttrack, redcard,
                  slimstate, slimcard, djit, none (base run)
  --print         print the instrumented program and exit
  --contexts      print per-statement analysis contexts (H • A) and exit
  --seed=N        scheduler seed (default 1)
  --quantum=N     max statements per scheduling quantum (default 24)
  --commit-interval=N
                  commit deferred footprints every N statements (the
                  Section 3.3 extension; 0 = only at synchronization)
  --async-detect  run the detector on its own thread behind a bounded
                  batch ring (reports stay identical to sync mode; an
                  [async] line shows the vm/detector time split)
  --detect-shards=N
                  fan detection out to N location-partitioned detector
                  workers (implies the async pipeline, takes precedence
                  over --async-detect; reports stay byte-identical for
                  every N; a [shards] line shows the per-lane split).
                  N may be "auto": derive the count from the machine's
                  core count (sharding stays off on one core). Also
                  accepted by trace record and trace replay.
  --no-sync-table
                  sharded mode: broadcast every sync edge to all lanes
                  (the legacy fan-out) instead of applying it once to
                  the shared epoch-published SyncClockTable; reports
                  and counters are byte-identical either way, only the
                  [shards] amplification changes
  --no-check-filter
                  disable the epoch-stamped redundant-check filter in
                  front of the detector; reports and counters are
                  byte-identical either way, only the [filter] line
                  and the speed change
  --oracle        also run the per-access ground-truth detector
  --stats         dump all counters after the run

trace subcommands (record once, re-analyze offline):
  bigfoot trace record --out=FILE [--tool=NAME] [run options] program.bfj
                  run with a detector attached, recording the event
                  stream to FILE; the report is identical to a plain run
  bigfoot trace replay [--tool=NAME] FILE
                  replay FILE into a fresh detector (default: the
                  recorded config; NAME must share its placement) and
                  print the same report the recording run printed
  bigfoot trace info FILE
                  describe a trace: config, symbols, events, summary
)";
}

std::string readFile(const char *Path);

/// `--detect-shards=` value: a number, or "auto" for a machine-derived
/// count (0 — sharding off — on a single core).
size_t parseShardCount(const char *Value) {
  if (std::strcmp(Value, "auto") == 0)
    return autoShardCount();
  return static_cast<size_t>(std::atoi(Value));
}

/// The post-run report shared verbatim by execution and replay — the
/// record/replay smoke test diffs the two outputs byte for byte.
template <typename RunT>
int reportRun(const std::string &ToolName, const RunT &Run, bool Oracle,
              bool DumpStats) {
  for (const std::string &Line : Run.Output)
    std::cout << Line << "\n";
  if (!Run.Ok) {
    std::cerr << "bigfoot: runtime error: " << Run.Error << "\n";
    return 1;
  }
  uint64_t Events = Run.Counters.get("tool.checkEvents.field") +
                    Run.Counters.get("tool.checkEvents.array");
  uint64_t Accesses = Run.Counters.get("vm.accesses");
  std::cerr << "[" << ToolName << "] " << Accesses << " accesses, "
            << Events << " check events ("
            << (Accesses ? static_cast<double>(Events) / Accesses : 0.0)
            << " ratio), " << Run.Counters.get("tool.shadowOps")
            << " shadow ops\n";
  // Deterministic per event stream and config, so replaying a recorded
  // run reprints it byte for byte — the record/replay smokes depend on
  // that. Filter-on vs. filter-off diffs must grep it away.
  if (Run.FilterEnabled)
    std::cerr << "[filter] " << Run.Filter.hits() << " hit(s), "
              << Run.Filter.misses() << " miss(es), "
              << Run.Filter.Invalidations << " invalidation(s), "
              << Run.Filter.RangeExtends << " range extend(s)\n";
  if (Run.ToolRaces.empty()) {
    std::cerr << "[" << ToolName << "] no races detected\n";
  } else {
    for (const ReportedRace &R : Run.ToolRaces)
      std::cerr << "[" << ToolName << "] " << R.str() << "\n";
  }
  if (Oracle) {
    std::cerr << "[oracle] " << Run.GroundTruthRaces.size()
              << " race(s) at per-access granularity\n";
  }
  if (DumpStats)
    for (const auto &[Name, Value] : Run.Counters.all())
      std::cerr << "  " << Name << " = " << Value << "\n";
  return Run.ToolRaces.empty() ? 0 : 2;
}

/// Sharded-mode lane summary on stderr. Works for online VmResult and
/// offline ReplayResult alike (both carry the Shard* fields); prefixed
/// like the [async] line so byte-diff consumers can filter it.
template <typename RunT>
void reportShards(size_t Shards, const RunT &Run) {
  if (Shards == 0)
    return;
  // Amplification: deliveries per emitted event — routed checks land on
  // exactly one lane; sync edges fan out to every lane in legacy
  // broadcast mode (copies = events x lanes) but apply exactly once to
  // the shared table in split-state mode, so there the ratio sits at
  // 1.0 by construction. An empty stream has no deliveries to amplify,
  // so the ratio pins to 1 instead of dividing by zero.
  bool SplitState = Run.ShardHorizonAdvances || Run.ShardSyncPublishes;
  uint64_t Emitted = Run.ShardRoutedEvents + Run.ShardBroadcastEvents;
  uint64_t Delivered = Run.ShardRoutedEvents + Run.ShardBroadcastCopies +
                       (SplitState ? Run.ShardBroadcastEvents : 0);
  std::cerr << "[shards] " << Run.ShardLanes.size() << " lane(s), "
            << Run.ShardRoutedEvents << " routed + "
            << Run.ShardBroadcastEvents << " broadcast event(s), "
            << (Emitted ? static_cast<double>(Delivered) / Emitted : 1.0)
            << "x amplification\n";
  if (Run.ShardSyncPublishes || Run.ShardHorizonAdvances)
    std::cerr << "[shards] sync table: " << Run.ShardSyncPublishes
              << " publish(es), " << Run.ShardTableReads
              << " table read(s), " << Run.ShardHorizonAdvances
              << " horizon advance(s), " << Run.ShardSyncTableBytes
              << " table byte(s)\n";
  for (size_t I = 0; I < Run.ShardLanes.size(); ++I) {
    const ShardLaneStats &L = Run.ShardLanes[I];
    std::cerr << "[shards]   lane " << I << ": " << L.Events
              << " event(s), " << static_cast<double>(L.BusyNs) * 1e-9
              << "s busy, " << L.Stalls << " stall(s)\n";
  }
  if (Run.ShardOrderViolations)
    std::cerr << "[shards] WARNING: " << Run.ShardOrderViolations
              << " ordering violation(s)\n";
}

/// Async-mode timing split on stderr, prefixed so byte-diff consumers can
/// filter it exactly like the [trace] line. Sharded mode pipelines too,
/// so it gets the same split plus its [shards] lane summary.
void reportAsync(const VmOptions &Opts, const VmResult &Run) {
  if (!Opts.AsyncDetect && Opts.DetectShards == 0)
    return;
  std::cerr << "[async] vm " << Run.VmSeconds << "s, detector "
            << Run.DetectorSeconds << "s, " << Run.AsyncBatches
            << " batch(es), " << Run.AsyncStalls << " stall(s)\n";
  reportShards(Opts.DetectShards, Run);
}

/// Instruments \p Prog for the named tool; false on an unknown name.
bool instrumentNamed(const Program &Prog, const std::string &ToolName,
                     InstrumentedProgram &IP) {
  if (ToolName == "bigfoot")
    IP = instrumentBigFoot(Prog);
  else if (ToolName == "fasttrack")
    IP = instrumentFastTrack(Prog);
  else if (ToolName == "redcard")
    IP = instrumentRedCard(Prog);
  else if (ToolName == "slimstate")
    IP = instrumentSlimState(Prog);
  else if (ToolName == "slimcard")
    IP = instrumentSlimCard(Prog);
  else if (ToolName == "djit") {
    IP = instrumentFastTrack(Prog);
    IP.Tool = djitConfig();
  } else {
    return false;
  }
  return true;
}

/// The config \p Name replays a recorded trace under. Proxy maps are
/// placement properties, so they come from the recorded config.
bool replayConfigNamed(const std::string &Name,
                       const DetectorConfig &Recorded, DetectorConfig &Out) {
  if (Name == "fasttrack")
    Out = fastTrackConfig();
  else if (Name == "slimstate")
    Out = slimStateConfig();
  else if (Name == "djit")
    Out = djitConfig();
  else if (Name == "redcard")
    Out = redCardConfig(Recorded.FieldProxy);
  else if (Name == "slimcard")
    Out = slimCardConfig(Recorded.FieldProxy);
  else if (Name == "bigfoot")
    Out = bigFootConfig(Recorded.FieldProxy);
  else
    return false;
  return true;
}

TraceSummary summaryOf(const VmResult &Run) {
  TraceSummary S;
  S.Ok = Run.Ok;
  S.Error = Run.Error;
  S.Output = Run.Output;
  S.StatementsExecuted = Run.StatementsExecuted;
  for (const auto &[Name, Value] : Run.Counters.all())
    if (Name.rfind("tool.", 0) != 0)
      S.Counters[Name] = Value;
  return S;
}

int traceMain(int Argc, char **Argv) {
  if (Argc < 3) {
    usage();
    return 1;
  }
  std::string Sub = Argv[2];
  std::string ToolName, OutPath;
  bool Oracle = false, DumpStats = false;
  const char *File = nullptr;
  VmOptions VmOpts;
  for (int I = 3; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--tool=", 7) == 0)
      ToolName = Arg + 7;
    else if (std::strncmp(Arg, "--out=", 6) == 0)
      OutPath = Arg + 6;
    else if (std::strcmp(Arg, "--oracle") == 0)
      Oracle = true;
    else if (std::strcmp(Arg, "--stats") == 0)
      DumpStats = true;
    else if (std::strncmp(Arg, "--seed=", 7) == 0)
      VmOpts.Seed = static_cast<uint64_t>(std::atoll(Arg + 7));
    else if (std::strncmp(Arg, "--quantum=", 10) == 0)
      VmOpts.Quantum = static_cast<unsigned>(std::atoi(Arg + 10));
    else if (std::strncmp(Arg, "--commit-interval=", 18) == 0)
      VmOpts.CommitIntervalSteps = static_cast<uint64_t>(std::atoll(Arg + 18));
    else if (std::strcmp(Arg, "--async-detect") == 0)
      VmOpts.AsyncDetect = true;
    else if (std::strncmp(Arg, "--detect-shards=", 16) == 0)
      VmOpts.DetectShards = parseShardCount(Arg + 16);
    else if (std::strcmp(Arg, "--no-sync-table") == 0)
      VmOpts.SyncTable = false;
    else if (std::strcmp(Arg, "--no-check-filter") == 0)
      VmOpts.CheckFilter = false;
    else if (Arg[0] == '-') {
      std::cerr << "bigfoot: error: unknown trace option '" << Arg << "'\n";
      return 1;
    } else {
      File = Arg;
    }
  }
  if (!File) {
    std::cerr << "bigfoot: error: trace " << Sub << " needs a file\n";
    return 1;
  }

  if (Sub == "record") {
    if (OutPath.empty()) {
      std::cerr << "bigfoot: error: trace record needs --out=FILE\n";
      return 1;
    }
    ParseResult PR = parseProgram(readFile(File));
    if (!PR.ok()) {
      std::cerr << "bigfoot: " << File << ": " << PR.Error << "\n";
      return 1;
    }
    if (ToolName.empty())
      ToolName = "bigfoot";
    InstrumentedProgram IP;
    if (!instrumentNamed(*PR.Prog, ToolName, IP)) {
      std::cerr << "bigfoot: error: unknown tool '" << ToolName << "'\n";
      return 1;
    }
    IP.Prog->internSymbols(); // The trace header serializes the table.
    TraceWriter Writer(IP.Prog->symbols(), IP.Tool);
    VmOpts.RecordSink = &Writer;
    VmOpts.EnableGroundTruth = Oracle;
    VmResult Run = runProgram(*IP.Prog, IP.Tool, VmOpts);
    Writer.finish(summaryOf(Run));
    if (!Writer.writeFile(OutPath)) {
      std::cerr << "bigfoot: error: cannot write trace '" << OutPath
                << "'\n";
      return 1;
    }
    std::cerr << "[trace] wrote " << Writer.buffer().size() << " bytes to "
              << OutPath << "\n";
    reportAsync(VmOpts, Run);
    return reportRun(ToolName, Run, Oracle, DumpStats);
  }

  if (Sub == "replay") {
    TraceReader Reader;
    if (!Reader.openFile(File)) {
      std::cerr << "bigfoot: " << File << ": " << Reader.error() << "\n";
      return 1;
    }
    DetectorConfig Cfg = Reader.config();
    if (!ToolName.empty() &&
        !replayConfigNamed(ToolName, Reader.config(), Cfg)) {
      std::cerr << "bigfoot: error: unknown tool '" << ToolName << "'\n";
      return 1;
    }
    ReplayOptions ROpts;
    ROpts.EnableGroundTruth = Oracle;
    ROpts.CheckFilter = VmOpts.CheckFilter;
    ROpts.DetectShards = VmOpts.DetectShards;
    ROpts.SyncTable = VmOpts.SyncTable;
    ReplayResult Run = replayTrace(Reader, Cfg, ROpts);
    reportShards(ROpts.DetectShards, Run);
    return reportRun(Cfg.Name, Run, Oracle, DumpStats);
  }

  if (Sub == "info") {
    TraceReader Reader;
    if (!Reader.openFile(File)) {
      std::cerr << "bigfoot: " << File << ": " << Reader.error() << "\n";
      return 1;
    }
    // Drain the stream to count events and reach the summary.
    std::vector<Event> Buf(kDefaultEventBatch);
    std::vector<uint32_t> Payload;
    while (Reader.nextBatch(Buf.data(), Buf.size(), Payload) > 0)
      ;
    if (!Reader.ok()) {
      std::cerr << "bigfoot: " << File << ": " << Reader.error() << "\n";
      return 1;
    }
    const DetectorConfig &C = Reader.config();
    std::cout << "trace: " << File << "\n"
              << "  config: " << C.Name
              << (C.DeferArrayChecks ? " +defer" : "")
              << (C.AdaptiveArrayShadow ? " +adaptive" : "")
              << (C.VectorClocksOnly ? " +vconly" : "") << ", "
              << C.FieldProxy.size() << " proxied field(s)\n"
              << "  symbols: " << Reader.symbols().size() << "\n"
              << "  events: " << Reader.eventsDecoded() << "\n";
    if (Reader.summaryReady()) {
      const TraceSummary &S = Reader.summary();
      std::cout << "  run: " << (S.Ok ? "ok" : ("error: " + S.Error)) << ", "
                << S.StatementsExecuted << " statements, "
                << S.Output.size() << " output line(s), "
                << S.Counters.size() << " counter(s)\n";
    }
    return 0;
  }

  std::cerr << "bigfoot: error: unknown trace subcommand '" << Sub << "'\n";
  return 1;
}

std::string readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "bigfoot: error: cannot open '" << Path << "'\n";
    std::exit(1);
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc >= 2 && std::strcmp(Argv[1], "trace") == 0)
    return traceMain(Argc, Argv);

  std::string ToolName = "bigfoot";
  bool PrintOnly = false, Contexts = false, Oracle = false, DumpStats = false;
  const char *File = nullptr;
  VmOptions VmOpts;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--tool=", 7) == 0)
      ToolName = Arg + 7;
    else if (std::strcmp(Arg, "--print") == 0)
      PrintOnly = true;
    else if (std::strcmp(Arg, "--contexts") == 0)
      Contexts = true;
    else if (std::strcmp(Arg, "--oracle") == 0)
      Oracle = true;
    else if (std::strcmp(Arg, "--stats") == 0)
      DumpStats = true;
    else if (std::strncmp(Arg, "--seed=", 7) == 0)
      VmOpts.Seed = static_cast<uint64_t>(std::atoll(Arg + 7));
    else if (std::strncmp(Arg, "--quantum=", 10) == 0)
      VmOpts.Quantum = static_cast<unsigned>(std::atoi(Arg + 10));
    else if (std::strncmp(Arg, "--commit-interval=", 18) == 0)
      VmOpts.CommitIntervalSteps =
          static_cast<uint64_t>(std::atoll(Arg + 18));
    else if (std::strcmp(Arg, "--async-detect") == 0)
      VmOpts.AsyncDetect = true;
    else if (std::strncmp(Arg, "--detect-shards=", 16) == 0)
      VmOpts.DetectShards = parseShardCount(Arg + 16);
    else if (std::strcmp(Arg, "--no-sync-table") == 0)
      VmOpts.SyncTable = false;
    else if (std::strcmp(Arg, "--no-check-filter") == 0)
      VmOpts.CheckFilter = false;
    else if (std::strcmp(Arg, "--help") == 0 || std::strcmp(Arg, "-h") == 0) {
      usage();
      return 0;
    } else if (Arg[0] == '-') {
      std::cerr << "bigfoot: error: unknown option '" << Arg << "'\n";
      usage();
      return 1;
    } else {
      File = Arg;
    }
  }
  if (!File) {
    usage();
    return 1;
  }

  ParseResult PR = parseProgram(readFile(File));
  if (!PR.ok()) {
    std::cerr << "bigfoot: " << File << ": " << PR.Error << "\n";
    return 1;
  }

  if (Contexts) {
    PlacementOptions Opts;
    Opts.TraceContexts = true;
    PlacementStats Stats = placeBigFootChecks(*PR.Prog, Opts);
    std::cout << printProgram(*PR.Prog);
    std::cout << "\n--- contexts after each statement ---\n";
    for (const auto &[Id, Ctx] : Stats.ContextAfter)
      std::cout << "#" << Id << ": " << Ctx << "\n";
    return 0;
  }

  if (ToolName == "none") {
    VmOpts.EnableGroundTruth = Oracle;
    VmResult Run = runProgramBase(*PR.Prog, VmOpts);
    for (const std::string &Line : Run.Output)
      std::cout << Line << "\n";
    if (!Run.Ok) {
      std::cerr << "bigfoot: runtime error: " << Run.Error << "\n";
      return 1;
    }
    return 0;
  }

  InstrumentedProgram IP;
  if (!instrumentNamed(*PR.Prog, ToolName, IP)) {
    std::cerr << "bigfoot: error: unknown tool '" << ToolName << "'\n";
    return 1;
  }

  if (PrintOnly) {
    std::cout << printProgram(*IP.Prog);
    return 0;
  }

  VmOpts.EnableGroundTruth = Oracle;
  VmResult Run = runProgram(*IP.Prog, IP.Tool, VmOpts);
  reportAsync(VmOpts, Run);
  return reportRun(ToolName, Run, Oracle, DumpStats);
}
